"""Fault-injection campaigns: many tests per point, aggregated.

Implements the paper's § II methodology: at every selected injection
point, run ``tests_per_point`` randomised single-bit-flip tests (100 in
the paper) and tally the six response types.  Everything is driven by a
single campaign seed — each test's RNG is rebuilt from
``SeedSequence(seed, spawn_key=(point_index, test_index))`` — so a
campaign is a pure function of ``(app, points, config)`` no matter how
its tests are scheduled.  ``jobs > 1`` (or a checkpoint directory)
delegates execution to the sharded engine in :mod:`repro.exec`, which
produces bit-identical results to the serial loop.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..apps.base import Application
from ..profiling.profiler import ApplicationProfile
from .outcome import OUTCOME_ORDER, Outcome
from .models import MODELS, draw_spec
from .runner import InjectionRunner, TestResult
from .scenario import Scenario
from .space import FaultSpec, InjectionPoint


@dataclass
class PointResult:
    """Aggregated responses at one injection point.

    Outcome tallies are maintained incrementally as tests are added via
    :meth:`add`, so ``outcomes``/``error_rate`` are O(1) on the hot path
    instead of rescanning the test list on every property access.  Code
    that appends to ``tests`` directly still gets correct answers: a
    cheap length check detects the stale tally and rebuilds it.
    """

    point: InjectionPoint
    tests: list[TestResult] = field(default_factory=list)
    _counts: Counter = field(default_factory=Counter, init=False, repr=False, compare=False)
    _n_errors: int = field(default=0, init=False, repr=False, compare=False)
    _n_excluded: int = field(default=0, init=False, repr=False, compare=False)
    _tallied: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for t in self.tests:
            self._tally(t)

    def add(self, test: TestResult) -> None:
        """Append one test and update the running tallies."""
        self.tests.append(test)
        self._tally(test)

    def _tally(self, test: TestResult) -> None:
        self._counts[test.outcome] += 1
        if test.outcome.is_error:
            self._n_errors += 1
        if not test.outcome.is_application_response:
            self._n_excluded += 1
        self._tallied += 1

    def _synced_counts(self) -> Counter:
        if self._tallied != len(self.tests):
            self._counts = Counter(t.outcome for t in self.tests)
            self._n_errors = sum(1 for t in self.tests if t.outcome.is_error)
            self._n_excluded = sum(
                1 for t in self.tests if not t.outcome.is_application_response
            )
            self._tallied = len(self.tests)
        return self._counts

    @property
    def outcomes(self) -> Counter:
        return Counter(self._synced_counts())

    @property
    def n_tests(self) -> int:
        return len(self.tests)

    @property
    def n_tool_errors(self) -> int:
        """Tests with a harness-level ``TOOL_ERROR`` verdict (excluded
        from every paper-facing rate)."""
        self._synced_counts()
        return self._n_excluded

    @property
    def error_rate(self) -> float:
        """Fraction of tests with a non-SUCCESS response (§ II).

        Harness-level ``TOOL_ERROR`` verdicts are excluded from both the
        numerator and the denominator — they say nothing about the
        application's sensitivity.
        """
        self._synced_counts()
        responses = len(self.tests) - self._n_excluded
        if responses <= 0:
            return 0.0
        return self._n_errors / responses

    def majority_outcome(self) -> Outcome:
        """The most frequent *application* response (ties break in
        Table I order).  TOOL_ERROR verdicts never win; a degenerate
        point whose every test failed at the harness level reports
        SUCCESS-by-absence and should be judged via
        :attr:`n_tool_errors` instead."""
        counts = self._synced_counts()
        best = max(
            (counts[o] for o in OUTCOME_ORDER if o in counts), default=0
        )
        if best:
            for outcome in OUTCOME_ORDER:
                if counts.get(outcome) == best:
                    return outcome
        return Outcome.SUCCESS

    def detail_samples(self) -> dict[Outcome, str]:
        """One representative ``detail`` string per observed outcome.

        The first non-empty detail wins; outcomes whose tests carry no
        detail (``SUCCESS``) are omitted.
        """
        samples: dict[Outcome, str] = {}
        for t in self.tests:
            if t.detail and t.outcome not in samples:
                samples[t.outcome] = t.detail
        return samples


@dataclass
class CampaignResult:
    """All point results of one campaign."""

    app_name: str
    tests_per_point: int
    param_policy: str
    points: dict[InjectionPoint, PointResult] = field(default_factory=dict)

    # -- aggregate views ------------------------------------------------

    def all_tests(self) -> list[TestResult]:
        return [t for pr in self.points.values() for t in pr.tests]

    def n_tests(self) -> int:
        """Total test count without materialising the flat list."""
        return sum(len(pr.tests) for pr in self.points.values())

    def outcome_histogram(self) -> dict[Outcome, int]:
        # Sums the per-point incremental tallies: O(points), not O(tests).
        # Covers OUTCOME_ORDER only, so TOOL_ERROR verdicts never leak
        # into paper-metric outcome rates (see tool_error_count()).
        counts: Counter = Counter()
        for pr in self.points.values():
            counts.update(pr._synced_counts())
        return {o: counts.get(o, 0) for o in OUTCOME_ORDER}

    def tool_error_count(self) -> int:
        """Campaign-wide count of harness-level ``TOOL_ERROR`` verdicts
        (quarantined units, contained simulator crashes)."""
        return sum(pr.n_tool_errors for pr in self.points.values())

    def predicted_count(self) -> int:
        """Tests resolved statically (``--static-prune``) instead of run."""
        return sum(
            1 for pr in self.points.values() for t in pr.tests if t.predicted
        )

    def outcome_fractions(self) -> dict[Outcome, float]:
        hist = self.outcome_histogram()
        total = sum(hist.values()) or 1
        return {o: c / total for o, c in hist.items()}

    def by_collective(self) -> dict[str, "CampaignResult"]:
        """Split the campaign per collective type."""
        out: dict[str, CampaignResult] = {}
        for point, pr in self.points.items():
            sub = out.setdefault(
                point.collective,
                CampaignResult(self.app_name, self.tests_per_point, self.param_policy),
            )
            sub.points[point] = pr
        return out

    def by_param(self) -> dict[str, dict[Outcome, int]]:
        """Outcome histogram per injected parameter (Fig. 9 view)."""
        out: dict[str, Counter] = {}
        for pr in self.points.values():
            for t in pr.tests:
                out.setdefault(t.spec.param, Counter())[t.outcome] += 1
        return {
            param: {o: c.get(o, 0) for o in OUTCOME_ORDER}
            for param, c in sorted(out.items())
        }

    def error_rates(self) -> list[float]:
        return [pr.error_rate for pr in self.points.values()]

    def detail_samples(self) -> dict[Outcome, str]:
        """Campaign-wide representative failure details, one per outcome."""
        samples: dict[Outcome, str] = {}
        for pr in self.points.values():
            for outcome, detail in pr.detail_samples().items():
                samples.setdefault(outcome, detail)
        return samples


class Campaign:
    """Drives injection tests over a set of points.

    Parameters
    ----------
    jobs:
        Worker processes for the campaign.  ``1`` (the default) runs the
        classic in-process loop; anything else shards the work units
        across a pool via :class:`repro.exec.ParallelCampaign` with
        bit-identical results.
    progress_every:
        Emit the ``progress`` callback at most every N completed units
        (points when serial, work units when parallel); the final update
        always fires.
    checkpoint_dir:
        Directory for periodic campaign checkpoints; with ``resume=True``
        a matching interrupted campaign restarts where it left off.
    db_path:
        SQLite campaign database (mutually exclusive with
        ``checkpoint_dir``): completed units are persisted through
        :class:`repro.store.DBCheckpointStore` — same resume semantics,
        plus queryable per-test rows and progress telemetry.
    progress_sinks:
        :class:`~repro.obs.progress.ProgressSink` consumers receiving
        periodic :class:`~repro.obs.progress.ProgressSnapshot` telemetry
        (tests/sec, outcome histogram, worker health, ETA).
    unit_timeout:
        Wall-clock seconds a parallel work unit may run per dispatch
        attempt before its worker is declared wedged and killed
        (``None`` = no deadline; ignored when ``jobs == 1``).
    max_retries:
        Re-dispatches granted to a unit whose worker died, wedged, or
        crashed before it is given up on.
    quarantine:
        When a unit exhausts its retries: ``True`` records synthetic
        ``TOOL_ERROR`` results and the campaign continues; ``False``
        aborts with :class:`~repro.exec.supervisor.UnitFailedError`.
    """

    def __init__(
        self,
        app: Application,
        profile: ApplicationProfile,
        tests_per_point: int = 100,
        param_policy: str = "buffer",
        seed: int = 0,
        progress: Callable[[int, int], None] | None = None,
        algorithms: dict[str, str] | None = None,
        metrics=None,
        jobs: int = 1,
        progress_every: int = 1,
        checkpoint_dir=None,
        db_path=None,
        resume: bool = False,
        unit_timeout: float | None = None,
        max_retries: int = 2,
        quarantine: bool = True,
        tracer=None,
        progress_sinks=None,
        preclassifier=None,
        snapshot: bool = True,
        fault_model: str = "bitflip",
        scenario: Scenario | None = None,
        stopper=None,
    ):
        self.app = app
        self.profile = profile
        self.tests_per_point = tests_per_point
        self.param_policy = param_policy
        self.seed = seed
        self.progress = progress
        self.algorithms = algorithms
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set
        #: the campaign records test/outcome tallies and per-point timing
        #: under ``campaign.*``.
        self.metrics = metrics
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if progress_every < 1:
            raise ValueError(f"progress_every must be >= 1, got {progress_every}")
        if unit_timeout is not None and unit_timeout <= 0:
            raise ValueError(f"unit_timeout must be > 0 seconds, got {unit_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if checkpoint_dir is not None and db_path is not None:
            raise ValueError("checkpoint_dir and db_path are mutually exclusive")
        if fault_model not in MODELS or fault_model == "scenario":
            raise ValueError(
                f"unknown fault model {fault_model!r}; "
                f"choices: {', '.join(n for n in MODELS if n != 'scenario')}"
            )
        if scenario is not None and fault_model != "bitflip":
            raise ValueError("scenario and fault_model are mutually exclusive")
        if preclassifier is not None and (
            scenario is not None or not MODELS[fault_model].preclassifiable
        ):
            # The static rules reason about single-bit parameter
            # corruption only; declining richer models keeps predictions
            # honest (see repro.analyze).
            raise ValueError(
                "static pruning (preclassifier) only understands the "
                "single-bit 'bitflip' fault model"
            )
        if preclassifier is not None and (
            jobs != 1 or checkpoint_dir is not None or db_path is not None
        ):
            # Parallel workers rebuild their own test streams and the
            # store schema has no predicted rows yet: static pruning is
            # serial-path only, and silently dropping it would change
            # which tests execute.
            raise ValueError(
                "static pruning (preclassifier) is incompatible with "
                "jobs>1, checkpoint_dir, and db_path"
            )
        if stopper is not None and preclassifier is not None:
            # Statically resolved slots never execute, so the stopper's
            # ordered-prefix contract (test 0, 1, 2, … of *executed*
            # results) would depend on which slots the preclassifier
            # proved — a different rule set would silently change where
            # every point stops.
            raise ValueError(
                "sequential stopping (stopper) is incompatible with "
                "static pruning (preclassifier)"
            )
        self.jobs = jobs
        self.progress_every = progress_every
        self.checkpoint_dir = checkpoint_dir
        self.db_path = db_path
        self.resume = resume
        #: Extra :class:`~repro.obs.progress.ProgressSink` consumers
        #: receiving periodic telemetry snapshots.
        self.progress_sinks = list(progress_sinks or [])
        self.unit_timeout = unit_timeout
        self.max_retries = max_retries
        self.quarantine = quarantine
        #: Optional :class:`~repro.obs.events.Tracer` receiving
        #: supervision events (``unit_retry``/``unit_quarantined``).
        self.tracer = tracer
        #: Optional :class:`repro.analyze.PreClassifier`; tests it
        #: proves are recorded as ``predicted`` results without running.
        self.preclassifier = preclassifier
        #: Snapshot-and-fork serving (:mod:`repro.snapshot`): run the
        #: fault-free prefix once per point and fork every test from the
        #: parked state.  Results are bit-identical either way; ``False``
        #: forces classic full replays (also selects the point-major unit
        #: layout when parallel).
        self.snapshot = snapshot
        #: Fault-model name from :data:`repro.injection.models.MODELS`
        #: applied to every test ("bitflip" = the paper's model).
        self.fault_model = fault_model
        #: Optional :class:`~repro.injection.scenario.Scenario`; when
        #: set, every test replays the timeline (under its synthetic
        #: anchor point) instead of drawing single faults.
        self.scenario = scenario
        #: Optional :class:`~repro.steer.SequentialStopper`: end each
        #: point's test stream early once its Wilson interval closes.
        #: The decision is a pure function of the ordered test prefix,
        #: so stopped campaigns stay bit-identical across schedulings.
        self.stopper = stopper
        self.runner = InjectionRunner(app, profile, algorithms=algorithms)
        self._engine = None

    def _rng_for(self, point_index: int, test_index: int) -> np.random.Generator:
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(point_index, test_index)
        )
        return np.random.default_rng(seq)

    def _snapshot_engine(self):
        """Lazy per-campaign :class:`~repro.snapshot.SnapshotEngine`."""
        if self._engine is None:
            from ..snapshot import SnapshotEngine

            self._engine = SnapshotEngine(self.runner, metrics=self.metrics)
        return self._engine

    def run_point(self, point: InjectionPoint, point_index: int = 0) -> PointResult:
        """All tests for one injection point."""
        if self.stopper is not None:
            return self._run_point_sequential(point, point_index)
        pr = PointResult(point)
        #: ``(slot, TestResult)`` for statically predicted tests and
        #: ``(slot, (spec, rng))`` for tests that must execute, so engine
        #: and scratch paths reassemble identical test order.
        predicted: list[tuple[int, TestResult]] = []
        tasks: list[tuple[FaultSpec, np.random.Generator]] = []
        for t in range(self.tests_per_point):
            if self.preclassifier is not None:
                prediction = self.preclassifier.predict(point, point_index, t)
                if prediction is not None:
                    predicted.append(
                        (
                            t,
                            TestResult(
                                FaultSpec(point, prediction.param, prediction.bit),
                                prediction.outcome,
                                None,
                                detail=f"static: {prediction.rule} — {prediction.detail}",
                                predicted=True,
                            ),
                        )
                    )
                    continue
            rng = self._rng_for(point_index, t)
            spec = draw_spec(
                point, rng,
                policy=self.param_policy,
                model=self.fault_model,
                scenario=self.scenario,
            )
            tasks.append((spec, rng))
        if self.snapshot and tasks:
            executed = self._snapshot_engine().serve_point(point, tasks)
        else:
            executed = [self.runner.run_one(spec, rng) for spec, rng in tasks]
        # Weave predicted results back into their original slots.
        merged: list[TestResult] = []
        pred_iter = iter(predicted)
        next_pred = next(pred_iter, None)
        exec_iter = iter(executed)
        for t in range(self.tests_per_point):
            if next_pred is not None and next_pred[0] == t:
                merged.append(next_pred[1])
                next_pred = next(pred_iter, None)
            else:
                merged.append(next(exec_iter))
        for test in merged:
            pr.add(test)
        if self.metrics is not None:
            self.metrics.counter("campaign.tests").inc(pr.n_tests)
            predicted = sum(1 for t in pr.tests if t.predicted)
            if predicted:
                self.metrics.counter("campaign.tests_predicted").inc(predicted)
            for outcome, n in pr._synced_counts().items():
                self.metrics.counter(f"campaign.outcome.{outcome.name}").inc(n)
            self.metrics.histogram("campaign.point_error_rate").observe(pr.error_rate)
        return pr

    def _run_point_sequential(self, point: InjectionPoint, point_index: int) -> PointResult:
        """Serve one test at a time, stopping once the stopper says the
        point's outcome histogram has converged.

        Tests execute strictly in test-index order, so the truncation
        index is a pure function of ``(seed, point_index)`` — identical
        under any scheduling.  Per-test serving costs almost nothing
        extra under the snapshot engine: the fault-free prefix snapshot
        is cached at the park, so every call after the first
        fast-forwards ~zero steps before forking.
        """
        pr = PointResult(point)
        for t in range(self.tests_per_point):
            rng = self._rng_for(point_index, t)
            spec = draw_spec(
                point, rng,
                policy=self.param_policy,
                model=self.fault_model,
                scenario=self.scenario,
            )
            if self.snapshot:
                [res] = self._snapshot_engine().serve_point(point, [(spec, rng)])
            else:
                res = self.runner.run_one(spec, rng)
            pr.add(res)
            if self.stopper.should_stop(pr.tests):
                break
        if self.metrics is not None:
            self.metrics.counter("campaign.tests").inc(pr.n_tests)
            saved = self.tests_per_point - pr.n_tests
            if saved:
                self.metrics.counter("campaign.tests_saved").inc(saved)
            for outcome, n in pr._synced_counts().items():
                self.metrics.counter(f"campaign.outcome.{outcome.name}").inc(n)
            self.metrics.histogram("campaign.point_error_rate").observe(pr.error_rate)
        return pr

    def run(
        self,
        points: Sequence[InjectionPoint] | Iterable[InjectionPoint],
        point_indices: Sequence[int] | None = None,
        digest: str | None = None,
    ) -> CampaignResult:
        """Run the campaign over ``points`` (kept in the given order).

        ``point_indices`` optionally names each point's *global* index —
        the coordinate fed into the ``SeedSequence`` spawn key and the
        work-unit ids — so a driver running a subset batch (ML-driven or
        adaptive steering) reproduces exactly the tests a full campaign
        would have run at those points.  Default: ``0..len(points)-1``.

        ``digest`` overrides the store identity for checkpoint/database
        runs; batch drivers pass one digest computed over the *full*
        candidate list so every batch lands in the same campaign row.
        """
        points = list(points)
        if point_indices is not None:
            point_indices = [int(i) for i in point_indices]
            if len(point_indices) != len(points):
                raise ValueError(
                    f"{len(point_indices)} point_indices for {len(points)} points"
                )
        if self.jobs != 1 or self.checkpoint_dir is not None or self.db_path is not None:
            from ..exec.parallel import ParallelCampaign

            return ParallelCampaign.from_campaign(self).run(
                points, point_indices=point_indices, digest=digest
            )
        tracker = None
        if self.progress_sinks:
            from ..obs.progress import ProgressTracker

            tracker = ProgressTracker(
                len(points) * self.tests_per_point,
                len(points),
                sinks=self.progress_sinks,
                every_units=self.progress_every,
                metrics=self.metrics,
            )
        result = CampaignResult(self.app.name, self.tests_per_point, self.param_policy)
        n = len(points)
        try:
            for i, point in enumerate(points):
                idx = point_indices[i] if point_indices is not None else i
                if self.metrics is not None:
                    with self.metrics.time("campaign.point_s"):
                        result.points[point] = self.run_point(point, point_index=idx)
                    self.metrics.counter("campaign.points").inc()
                else:
                    result.points[point] = self.run_point(point, point_index=idx)
                if tracker is not None:
                    tracker.unit_done(result.points[point].tests)
                if self.progress is not None and (
                    (i + 1) % self.progress_every == 0 or i + 1 == n
                ):
                    self.progress(i + 1, n)
        finally:
            if tracker is not None:
                tracker.finish()
        return result
