"""Timeline-driven multi-fault scenarios.

FINJ-style workload files: a scenario is a named sequence of timed fault
tasks ``(t, model, rank, ...)``, possibly overlapping, where ``t`` is the
rank-local collective sequence index (``CollectiveCall.seq``) — the
simulator's deterministic clock.  A task *fires at the first collective
its rank enters with* ``seq >= t``; parameter tasks corrupt that call,
wire/rank tasks arm from it onward.

Determinism contract: a scenario test draws every random quantity
(parameter choice, bit, burst width) from the campaign's per-test
``SeedSequence(entropy=seed, spawn_key=(point_index, test_index))``
stream in scheduler order, so serial, parallel, and resumed campaigns
replay bit-identically — the same contract single-bit tests obey.

The on-disk format is JSON::

    {"version": 1, "name": "drop-then-flip",
     "tasks": [{"t": 0, "model": "msg_drop", "rank": 1},
               {"t": 2, "model": "bitflip", "rank": 0, "param": "count"}]}

Unknown keys, unknown models, and ill-typed fields are rejected with
:class:`ScenarioError` (the CLI maps it to a one-line exit-2 error).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

import numpy as np

from ..simmpi import COLLECTIVE_PARAMS, CollectiveCall, Instrument, MPIError
from ..simmpi.scheduler import DeliveryTap
from .injector import FaultInjector, InjectionRecord
from .multibit import BurstInjector
from .space import InjectionPoint, ModelSpec
from .targets import pick_target
from .wire import Arm, RANK_MODELS, WIRE_MODELS, resolve_stall_weight

#: Current (and only) scenario file format version.
SCENARIO_VERSION = 1

#: Models a scenario task may name: the parameter models plus every
#: wire/rank model ("scenario" itself cannot nest).
PARAM_TASK_MODELS = ("bitflip", "multibit")
TASK_MODELS = PARAM_TASK_MODELS + WIRE_MODELS + RANK_MODELS

#: Synthetic collective name anchoring scenario campaigns in the
#: existing (point, test) stream.
SCENARIO_COLLECTIVE = "Scenario"


class ScenarioError(ValueError):
    """A scenario file or task is malformed."""


@dataclass(frozen=True)
class ScenarioTask:
    """One timed fault task.

    ``t`` is the rank-local collective sequence index at (or after)
    which the task fires; the remaining knobs mirror
    :class:`~repro.injection.space.ModelSpec`.
    """

    t: int
    model: str
    rank: int
    param: str = ""
    bit: int | None = None
    width: int = 0
    count: int = 1
    weight: int = 0


@dataclass(frozen=True)
class Scenario:
    """A named, ordered timeline of fault tasks."""

    name: str
    tasks: tuple[ScenarioTask, ...]

    def fingerprint(self) -> str:
        """Stable content hash (folds into campaign digests)."""
        return hashlib.sha256(
            serialize_scenario(self).encode("utf-8")
        ).hexdigest()[:16]

    def anchor_point(self) -> InjectionPoint:
        """The synthetic injection point a scenario campaign runs under.

        Scenario tasks address ranks and times directly, so the
        campaign machinery needs exactly one point to thread the
        ``(point_index, test_index)`` seed stream through; its site
        carries the scenario name for reports and forensics.
        """
        return InjectionPoint(0, SCENARIO_COLLECTIVE, f"scenario:{self.name}", 0)


# -- parsing / serialization -------------------------------------------

_TASK_FIELDS = {f.name for f in fields(ScenarioTask)}
_TASK_DEFAULTS = {
    f.name: f.default for f in fields(ScenarioTask) if f.name not in ("t", "model", "rank")
}


def _check_task(raw: object, index: int) -> ScenarioTask:
    where = f"task {index}"
    if not isinstance(raw, dict):
        raise ScenarioError(f"{where}: expected an object, got {type(raw).__name__}")
    unknown = set(raw) - _TASK_FIELDS
    if unknown:
        raise ScenarioError(f"{where}: unknown keys {sorted(unknown)}")
    for required in ("t", "model", "rank"):
        if required not in raw:
            raise ScenarioError(f"{where}: missing required key {required!r}")
    model = raw["model"]
    if model not in TASK_MODELS:
        raise ScenarioError(
            f"{where}: unknown model {model!r} (choices: {', '.join(TASK_MODELS)})"
        )
    for key in ("t", "rank", "width", "count", "weight"):
        value = raw.get(key, 0)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ScenarioError(f"{where}: {key} must be a non-negative integer")
    if raw.get("count", 1) == 0:
        raise ScenarioError(f"{where}: count must be >= 1")
    bit = raw.get("bit")
    if bit is not None and (isinstance(bit, bool) or not isinstance(bit, int) or bit < 0):
        raise ScenarioError(f"{where}: bit must be null or a non-negative integer")
    param = raw.get("param", "")
    if not isinstance(param, str):
        raise ScenarioError(f"{where}: param must be a string")
    if param and not any(param in params for params in COLLECTIVE_PARAMS.values()):
        raise ScenarioError(f"{where}: {param!r} names no collective parameter")
    if param and model not in PARAM_TASK_MODELS:
        raise ScenarioError(f"{where}: param only applies to {'/'.join(PARAM_TASK_MODELS)}")
    return ScenarioTask(**{k: raw[k] for k in raw})


def parse_scenario(data: "str | bytes | dict") -> Scenario:
    """Parse a scenario document (JSON text or an already-decoded dict)."""
    if isinstance(data, (str, bytes)):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ScenarioError(f"expected a JSON object, got {type(data).__name__}")
    unknown = set(data) - {"version", "name", "tasks"}
    if unknown:
        raise ScenarioError(f"unknown top-level keys {sorted(unknown)}")
    if data.get("version") != SCENARIO_VERSION:
        raise ScenarioError(
            f"unsupported scenario version {data.get('version')!r} "
            f"(expected {SCENARIO_VERSION})"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioError("name must be a non-empty string")
    tasks = data.get("tasks")
    if not isinstance(tasks, list) or not tasks:
        raise ScenarioError("tasks must be a non-empty list")
    return Scenario(name, tuple(_check_task(raw, i) for i, raw in enumerate(tasks)))


def serialize_scenario(scenario: Scenario) -> str:
    """Canonical JSON for a scenario (round-trips through parse)."""
    tasks = []
    for task in scenario.tasks:
        raw: dict = {"t": task.t, "model": task.model, "rank": task.rank}
        for key, default in _TASK_DEFAULTS.items():
            value = getattr(task, key)
            if value != default:
                raw[key] = value
        tasks.append(raw)
    return json.dumps(
        {"version": SCENARIO_VERSION, "name": scenario.name, "tasks": tasks},
        sort_keys=True,
    )


def load_scenario(path: str) -> Scenario:
    """Parse a scenario file, mapping I/O errors to :class:`ScenarioError`."""
    try:
        # CLI-boundary file read, never reached from simulator fibers.
        with open(path, "r", encoding="utf-8") as fh:  # lint: allow(blocking-io)
            text = fh.read()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc
    try:
        return parse_scenario(text)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from exc


# -- execution ----------------------------------------------------------

class _ScenarioTap(DeliveryTap):
    """Aggregates the wire arms of every active scenario task.

    The first arm acting on a message wins — overlapping wire tasks on
    the same rank compose in timeline order.
    """

    def __init__(self) -> None:
        self.arms: list[Arm] = []
        self.pending_steps = 0

    def on_send(self, sender: int, call) -> list[bytes] | None:
        for arm in self.arms:
            payloads = arm.on_send(sender, call)
            if payloads is not None:
                return payloads
        return None


class ScenarioInjector(Instrument):
    """Drives one scenario timeline inside one simulated job.

    Each task fires once, at the first collective its rank enters with
    ``seq >= t``; tasks are checked in timeline order so overlapping
    tasks draw from the shared RNG deterministically.  ``record`` is
    the first fault that actually struck (``records`` has all of them),
    matching the single-fault result plumbing.
    """

    def __init__(self, spec: ModelSpec, rng: np.random.Generator, tracer=None):
        if spec.scenario is None:
            raise ValueError("scenario spec carries no scenario")
        self.spec = spec
        self.scenario: Scenario = spec.scenario
        self.rng = rng
        self.tracer = tracer
        self.tap = _ScenarioTap()
        self.records: list[InjectionRecord] = []
        self._pending = list(self.scenario.tasks)

    @property
    def record(self) -> InjectionRecord | None:
        return self.records[0] if self.records else None

    @property
    def fired(self) -> bool:
        return bool(self.records)

    def _collect(self, rec: InjectionRecord | None) -> None:
        if rec is not None:
            self.records.append(rec)

    def _fire_param(self, ctx, call: CollectiveCall, task: ScenarioTask) -> None:
        param = task.param or pick_target(self.rng, call.name, "all")
        if param not in COLLECTIVE_PARAMS[call.name]:
            # A pinned parameter the fired-at collective lacks: the
            # task lands as a skipped injection, not a harness error.
            self.records.append(
                InjectionRecord(
                    param, "scenario", -1, skipped=True,
                    collective=call.name, site=call.site,
                    invocation=call.invocation,
                )
            )
            return
        point = InjectionPoint(call.rank, call.name, call.site, call.invocation)
        if task.model == "multibit":
            sub: FaultInjector = BurstInjector(
                ModelSpec(point, "multibit", param=param, bit=task.bit, width=task.width),
                self.rng,
                tracer=self.tracer,
            )
        else:
            sub = FaultInjector(
                ModelSpec(point, "bitflip", param=param, bit=task.bit),
                self.rng,
                tracer=self.tracer,
            )
        sub._inject(ctx, call)
        self._collect(sub.record)

    def _arm_wire(self, task: ScenarioTask) -> None:
        arm = Arm(
            task.model,
            task.rank,
            self.rng,
            width=task.width,
            count=task.count,
            on_fire=lambda a, detail, _task=task: self.records.append(
                InjectionRecord(
                    "payload", _task.model, -1,
                    collective=SCENARIO_COLLECTIVE,
                    site=f"scenario:{self.scenario.name}",
                    invocation=_task.t,
                    after=detail,
                )
            ),
        )
        arm.active = True
        self.tap.arms.append(arm)

    def on_collective(self, ctx, call: CollectiveCall) -> None:
        if not self._pending:
            return
        still_pending = []
        for task in self._pending:
            if call.rank != task.rank or call.seq < task.t:
                still_pending.append(task)
                continue
            if task.model in PARAM_TASK_MODELS:
                self._fire_param(ctx, call, task)
            elif task.model == "rank_stall":
                weight = resolve_stall_weight(task.weight, ctx.runtime.step_budget)
                self.tap.pending_steps += weight
                self.records.append(
                    InjectionRecord(
                        "rank", task.model, -1,
                        collective=call.name, site=call.site,
                        invocation=call.invocation,
                        after=f"rank {call.rank} stalled for {weight} steps",
                    )
                )
            elif task.model == "rank_crash":
                self.records.append(
                    InjectionRecord(
                        "rank", task.model, -1,
                        collective=call.name, site=call.site,
                        invocation=call.invocation,
                        after=f"rank {call.rank} failed entering {call.name}",
                    )
                )
                # The job aborts here; any remaining task is moot.
                self._pending = []
                raise MPIError(
                    "MPI_ERR_PROC_FAILED",
                    f"rank {call.rank} failed entering {call.name}",
                    rank=call.rank,
                )
            else:
                self._arm_wire(task)
        self._pending = still_pending
