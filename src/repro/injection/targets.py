"""Fault targets: which parameter of a collective gets the bit flip.

The paper injects into "the input parameters of the collective
interface": the send/receive data buffers, element counts, datatype,
reduction op, root, and communicator.  Buffer *addresses* are never
flipped (the outcome is trivially catastrophic, § II).

``param_policy`` strings used throughout the campaign layer:

* ``"buffer"`` — the paper's default for the sensitivity studies
  ("we inject faults into the data buffer … if there is any data
  buffer"); collectives without one (Barrier) fall back to their full
  parameter list.
* ``"all"`` — uniform over every parameter (the Fig. 7 style general
  campaigns and the Fig. 9 per-parameter study).
* a specific parameter name (``"count"``, ``"op"``, …) — the Fig. 9
  per-parameter sweeps.
"""

from __future__ import annotations

import numpy as np

from ..simmpi import (
    BUFFER_PARAMS,
    COLLECTIVE_PARAMS,
    HANDLE_PARAMS,
    HANDLE_VECTOR_PARAMS,
    SCALAR_PARAMS,
    VECTOR_PARAMS,
)


def buffer_targets(collective: str) -> tuple[str, ...]:
    """The data-buffer parameters of a collective (may be empty)."""
    return tuple(p for p in COLLECTIVE_PARAMS[collective] if p in BUFFER_PARAMS)


def all_targets(collective: str) -> tuple[str, ...]:
    return COLLECTIVE_PARAMS[collective]


def targets_for_policy(collective: str, policy: str) -> tuple[str, ...]:
    """Resolve a policy string to the concrete parameter tuple."""
    if policy == "all":
        return all_targets(collective)
    if policy == "buffer":
        bufs = buffer_targets(collective)
        return bufs if bufs else all_targets(collective)
    if policy in COLLECTIVE_PARAMS[collective]:
        return (policy,)
    raise ValueError(
        f"policy {policy!r} does not name a parameter of {collective} "
        f"(has {COLLECTIVE_PARAMS[collective]})"
    )


def pick_target(
    rng: np.random.Generator, collective: str, policy: str
) -> str:
    """Randomly choose the parameter to corrupt for one test."""
    candidates = targets_for_policy(collective, policy)
    return candidates[int(rng.integers(0, len(candidates)))]


def param_kind(param: str) -> str:
    """Machine representation of a parameter: buffer/scalar/handle/vector."""
    if param in BUFFER_PARAMS:
        return "buffer"
    if param in SCALAR_PARAMS:
        return "scalar"
    if param in HANDLE_PARAMS:
        return "handle"
    if param in VECTOR_PARAMS:
        return "vector"
    if param in HANDLE_VECTOR_PARAMS:
        return "handle_vector"
    raise ValueError(f"unknown parameter {param!r}")
