"""Wire faults: message-level and rank-level failures.

These faults live below the collective interface.  A
:class:`WireFaultInjector` *arms* at the spec's injection point exactly
like the parameter injector (same rank/site/invocation match), but the
fault itself strikes the simulated network — the
:class:`~repro.simmpi.scheduler.DeliveryTap` sees every message between
the send syscall and its delivery and can drop, duplicate, reorder, or
corrupt it — or the rank itself (crash raises the simulated MPI process
failure; stall charges the scheduler's deadline budget so detection
rides the existing ``INF_LOOP`` machinery).

The tiny delivery helpers (:func:`drop_payloads` & co.) are module-level
on purpose: the seeded fault-model mutants
(:mod:`repro.verify.models`) patch them to plant plausible defects — a
drop that silently retries, a reorder that preserves FIFO, a stall
shorter than the deadline — and the conformance harness must catch each
one.
"""

from __future__ import annotations

import numpy as np

from ..simmpi import CollectiveCall, Instrument, MPIError
from ..simmpi.scheduler import DeliveryTap
from .injector import InjectionRecord

#: Wire fault-model names served by :class:`WireFaultInjector`.
WIRE_MODELS = ("msg_drop", "msg_dup", "msg_reorder", "msg_corrupt")
#: Rank fault-model names served by :class:`WireFaultInjector`.
RANK_MODELS = ("rank_crash", "rank_stall")


# -- delivery helpers (seeded-mutant patch targets) ---------------------

def drop_payloads(payload: bytes) -> list[bytes]:
    """A dropped message delivers nothing."""
    return []


def dup_payloads(payload: bytes, copies: int) -> list[bytes]:
    """A duplicated message delivers the original plus ``copies`` clones."""
    return [payload] * (copies + 1)


def reorder_release(held: bytes, new: bytes) -> list[bytes]:
    """Release a held-back message *after* the one that overtook it."""
    return [new, held]


def corrupt_payload(payload: bytes, rng: np.random.Generator, width: int) -> bytes:
    """Flip ``width`` adjacent bits of a payload (1 if unspecified)."""
    if not payload:
        return payload
    width = width if width > 0 else 1
    span = len(payload) * 8
    base = int(rng.integers(0, span))
    buf = bytearray(payload)
    for i in range(width):
        flat = (base + i) % span
        buf[flat // 8] ^= 1 << (flat % 8)
    return bytes(buf)


def resolve_stall_weight(explicit: int, step_budget: int) -> int:
    """Steps a stalled rank charges to the deadline budget.

    With no explicit weight the stall is *unbounded* — it charges past
    the whole budget, so the supervisor kills the run exactly as it
    would a livelock (``INF_LOOP``).  An explicit weight models a
    transient stall the run survives.
    """
    return explicit if explicit > 0 else step_budget + 1


# -- the armed fault ----------------------------------------------------

class Arm:
    """One armed wire fault acting on sends from one world rank.

    Inactive until the owning injector sees the spec's collective entry;
    then the next ``count`` sends from the armed rank are hit.  The
    reorder model holds the first matching payload back and releases it
    swapped behind the next send on the *same* match key (messages on
    other keys pass through undisturbed); a payload still held at job
    end was effectively dropped.
    """

    def __init__(
        self,
        model: str,
        rank: int,
        rng: np.random.Generator,
        width: int = 0,
        count: int = 1,
        on_fire=None,
    ):
        self.model = model
        self.rank = rank
        self.rng = rng
        self.width = width
        self.remaining = max(count, 1)
        self.on_fire = on_fire
        self.active = False
        self.held: tuple[tuple[int, int, int, int], bytes] | None = None

    def _fired(self, call: CollectiveCall | None, detail: str) -> None:
        self.remaining -= 1
        if self.on_fire is not None:
            self.on_fire(self, detail)

    def on_send(self, sender: int, call) -> list[bytes] | None:
        if not self.active or self.remaining <= 0 or sender != self.rank:
            return None
        if self.model == "msg_drop":
            self._fired(None, f"dropped {len(call.payload)}B message")
            return drop_payloads(call.payload)
        if self.model == "msg_dup":
            self._fired(None, f"duplicated {len(call.payload)}B message")
            return dup_payloads(call.payload, 1)
        if self.model == "msg_corrupt":
            corrupted = corrupt_payload(call.payload, self.rng, self.width)
            self._fired(None, f"corrupted {len(call.payload)}B message")
            return [corrupted]
        if self.model == "msg_reorder":
            key = (call.context_id, call.src, call.dst, call.tag)
            if self.held is None:
                self.held = (key, call.payload)
                return []  # held back, awaiting the overtaking send
            held_key, held_payload = self.held
            if key != held_key:
                return None  # different stream: deliver normally
            self.held = None
            self._fired(None, "reordered two same-key messages")
            return reorder_release(held_payload, call.payload)
        return None  # pragma: no cover - defensive


class _WireTap(DeliveryTap):
    """Delivery tap delegating to one armed wire fault."""

    def __init__(self, arm: Arm):
        self.arm = arm
        self.pending_steps = 0

    def on_send(self, sender: int, call) -> list[bytes] | None:
        return self.arm.on_send(sender, call)


class WireFaultInjector(Instrument):
    """Arms one wire or rank fault at one injection point.

    The instrument watches collective entries exactly like
    :class:`~repro.injection.injector.FaultInjector`; at the match it
    either activates the delivery-layer arm (wire models), raises the
    simulated process failure (``rank_crash``), or deposits stall steps
    on the tap (``rank_stall``).  ``record`` is populated when the fault
    actually strikes, so an armed wire fault whose rank never sends
    counts as uninjected — the same semantics as a zero-length buffer
    flip.
    """

    def __init__(self, spec, rng: np.random.Generator, tracer=None):
        self.spec = spec
        self.rng = rng
        self.tracer = tracer
        self.record: InjectionRecord | None = None
        self._armed = False
        model = spec.model
        if model in WIRE_MODELS:
            self.arm: Arm | None = Arm(
                model,
                spec.point.rank,
                rng,
                width=getattr(spec, "width", 0),
                count=getattr(spec, "count", 1),
                on_fire=self._on_fire,
            )
            self.tap: DeliveryTap = _WireTap(self.arm)
        elif model in RANK_MODELS:
            self.arm = None
            self.tap = DeliveryTap()
        else:  # pragma: no cover - defensive
            raise ValueError(f"not a wire/rank fault model: {model!r}")

    @property
    def fired(self) -> bool:
        return self.record is not None

    def _on_fire(self, arm: Arm, detail: str) -> None:
        if self.record is None:
            self.record = InjectionRecord(
                self.spec.param,
                self.spec.model,
                -1,
                collective=self._call_name,
                site=self._call_site,
                invocation=self._call_invocation,
                after=detail,
            )
            if self.tracer is not None:
                self.tracer.emit(
                    "fault_fired", self.spec.point.rank,
                    param=self.spec.param, param_kind=self.spec.model, bit=-1,
                    collective=self._call_name, site=self._call_site,
                    invocation=self._call_invocation, skipped=False,
                    before="", after=detail,
                )

    def on_collective(self, ctx, call: CollectiveCall) -> None:
        if self._armed:
            return
        p = self.spec.point
        if (
            call.rank != p.rank
            or call.name != p.collective
            or call.site != p.site
            or call.invocation != p.invocation
        ):
            return
        self._armed = True
        self._call_name = call.name
        self._call_site = call.site
        self._call_invocation = call.invocation
        model = self.spec.model
        if model == "rank_crash":
            self._on_fire(None, f"rank {call.rank} failed entering {call.name}")
            raise MPIError(
                "MPI_ERR_PROC_FAILED",
                f"rank {call.rank} failed entering {call.name}",
                rank=call.rank,
            )
        if model == "rank_stall":
            weight = resolve_stall_weight(
                getattr(self.spec, "weight", 0), ctx.runtime.step_budget
            )
            self.tap.pending_steps += weight
            self._on_fire(None, f"rank {call.rank} stalled for {weight} steps")
            return
        # Wire models: the fault strikes at the delivery layer from the
        # next send onward.
        self.arm.active = True
