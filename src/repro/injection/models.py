"""The composable fault-model registry.

The paper's sensitivity study uses exactly one fault model — a single
bit flip in one collective parameter — and that model stays the default
everywhere (``FaultSpec`` is untouched, so existing campaign digests and
histograms are byte-stable).  This module generalizes the *choice* of
model: each :class:`FaultModel` names an injector builder plus the
integration properties the rest of the stack keys on — whether the
snapshot-and-fork engine may serve it from a parked prefix
(``snapshot_safe``: only single-site parameter faults qualify) and
whether the static preclassifier understands it (``preclassifiable``:
only the paper's single-bit model).

``draw_spec`` is the one place a campaign turns ``(point, rng)`` into a
concrete spec; serial workers, parallel workers, and quarantine
synthesis all call it, which is what keeps serial ↔ parallel ↔ resumed
campaigns bit-identical for every model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .injector import FaultInjector
from .multibit import BurstInjector
from .scenario import Scenario, ScenarioInjector
from .space import FaultSpec, InjectionPoint, ModelSpec
from .targets import pick_target
from .wire import RANK_MODELS, WIRE_MODELS, WireFaultInjector


@dataclass(frozen=True)
class FaultModel:
    """One entry in the fault-model catalog.

    ``kind`` groups models by where the fault strikes: ``"param"``
    (collective arguments, the paper's space), ``"wire"`` (the simulated
    network), ``"rank"`` (the process itself), or ``"scenario"``
    (a timeline composing the others).
    """

    name: str
    kind: str
    description: str
    snapshot_safe: bool
    builder: Callable
    preclassifiable: bool = False


MODELS: dict[str, FaultModel] = {
    "bitflip": FaultModel(
        "bitflip", "param",
        "single bit flip in one collective parameter (the paper's model)",
        snapshot_safe=True, builder=FaultInjector, preclassifiable=True,
    ),
    "multibit": FaultModel(
        "multibit", "param",
        "burst of adjacent bit flips in one collective parameter",
        snapshot_safe=True, builder=BurstInjector,
    ),
    "msg_drop": FaultModel(
        "msg_drop", "wire",
        "one message silently dropped at the delivery layer",
        snapshot_safe=False, builder=WireFaultInjector,
    ),
    "msg_dup": FaultModel(
        "msg_dup", "wire",
        "one message delivered twice",
        snapshot_safe=False, builder=WireFaultInjector,
    ),
    "msg_reorder": FaultModel(
        "msg_reorder", "wire",
        "two same-key messages delivered out of order",
        snapshot_safe=False, builder=WireFaultInjector,
    ),
    "msg_corrupt": FaultModel(
        "msg_corrupt", "wire",
        "payload bits flipped on the wire",
        snapshot_safe=False, builder=WireFaultInjector,
    ),
    "rank_crash": FaultModel(
        "rank_crash", "rank",
        "rank fails entering the collective (MPI process failure)",
        snapshot_safe=False, builder=WireFaultInjector,
    ),
    "rank_stall": FaultModel(
        "rank_stall", "rank",
        "rank stalls, charging the deadline budget (unbounded by default)",
        snapshot_safe=False, builder=WireFaultInjector,
    ),
    "scenario": FaultModel(
        "scenario", "scenario",
        "timeline of timed, possibly overlapping fault tasks",
        snapshot_safe=False, builder=ScenarioInjector,
    ),
}

#: Names a user may pass to ``--fault-model`` ("scenario" is reached
#: via ``--scenario`` instead, which carries the timeline).
SELECTABLE_MODELS = tuple(n for n in MODELS if n != "scenario")


def model_for_spec(spec) -> FaultModel:
    """The catalog entry a spec runs under (``FaultSpec`` → bitflip)."""
    return MODELS[getattr(spec, "model", "bitflip")]


def build_injector(spec, rng: np.random.Generator, tracer=None):
    """Construct the armed injector instrument for one test."""
    return model_for_spec(spec).builder(spec, rng, tracer=tracer)


def draw_spec(
    point: InjectionPoint,
    rng: np.random.Generator,
    *,
    policy: str,
    model: str = "bitflip",
    scenario: Scenario | None = None,
):
    """Draw one concrete spec for one test — the shared RNG contract.

    The bitflip path is bit-for-bit the historical behavior (one
    ``pick_target`` draw, bit deferred to injection time); parameter
    models make the same single draw; wire/rank models draw nothing at
    spec time (their knobs come from the same RNG at injection time);
    scenario tests carry the timeline verbatim.
    """
    if scenario is not None:
        return ModelSpec(point, "scenario", scenario=scenario)
    if model == "bitflip":
        return FaultSpec(point, pick_target(rng, point.collective, policy), None)
    entry = MODELS[model]
    if entry.kind == "param":
        return ModelSpec(point, model, param=pick_target(rng, point.collective, policy))
    if model in WIRE_MODELS:
        return ModelSpec(point, model, param="payload")
    if model in RANK_MODELS:
        return ModelSpec(point, model, param="rank")
    raise ValueError(f"cannot draw specs for model {model!r}")  # pragma: no cover
