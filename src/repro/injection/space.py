"""Fault-injection point enumeration.

Following § II of the paper, a fault injection *point* is one invocation
of one collective call site on one rank; a fault injection *test* is a
point plus a concrete fault (parameter, bit).  The unpruned space is the
cross product over ranks × sites × invocations — 618,496 points for the
paper's small LAMMPS deployment, which is exactly why pruning matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..profiling.profiler import ApplicationProfile


@dataclass(frozen=True, order=True)
class InjectionPoint:
    """One (rank, call site, invocation) triple."""

    rank: int
    collective: str
    site: str
    invocation: int

    @property
    def site_key(self) -> tuple[str, str]:
        return (self.collective, self.site)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.collective}@{self.site}#inv{self.invocation}@rank{self.rank}"


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault: where (point) and what (parameter, bit).

    ``bit`` addresses the parameter's machine representation: for buffer
    parameters it is a flat bit offset into the buffer contents; for
    scalars/handles a bit index of the value; for vector parameters the
    pair ``(element, bit)`` is packed as ``element * 32 + bit``.
    """

    point: InjectionPoint
    param: str
    bit: int

    #: Fault-model name (class attribute, not a field: single-bit specs
    #: stay byte-identical under pickling and hashing, which keeps PR-8
    #: campaign digests stable).  Richer models use
    #: :class:`repro.injection.models.ModelSpec`, which overrides this
    #: with a real field.
    model = "bitflip"


@dataclass(frozen=True)
class ModelSpec:
    """One concrete fault under a richer fault model.

    Generalizes :class:`FaultSpec` (which stays the dedicated,
    byte-stable single-bit spec): ``model`` names an entry in
    :data:`repro.injection.models.MODELS`; the remaining fields are
    model-specific knobs, zero-valued when a model does not use them.

    ``width``
        adjacent bits for ``multibit``/``msg_corrupt`` bursts
        (0 = draw from the test's RNG);
    ``count``
        messages hit by a wire fault (default 1);
    ``weight``
        steps a ``rank_stall`` charges to the deadline budget
        (0 = unbounded, i.e. past the whole budget → ``INF_LOOP``);
    ``scenario``
        the timeline for ``model == "scenario"`` tests.
    """

    point: InjectionPoint
    model: str
    param: str = ""
    bit: int | None = None
    width: int = 0
    count: int = 1
    weight: int = 0
    scenario: "object | None" = None


def enumerate_points(profile: ApplicationProfile) -> list[InjectionPoint]:
    """The full, unpruned injection-point space of a profiled run."""
    points: list[InjectionPoint] = []
    for (rank, (name, site)), summary in sorted(profile.summaries.items()):
        for invocation in range(summary.n_invocations):
            points.append(InjectionPoint(rank, name, site, invocation))
    return points


def points_per_site(points: list[InjectionPoint]) -> dict[tuple[str, str], list[InjectionPoint]]:
    """Group points by static call site."""
    by_site: dict[tuple[str, str], list[InjectionPoint]] = {}
    for pt in points:
        by_site.setdefault(pt.site_key, []).append(pt)
    return by_site
