"""Fault-injection point enumeration.

Following § II of the paper, a fault injection *point* is one invocation
of one collective call site on one rank; a fault injection *test* is a
point plus a concrete fault (parameter, bit).  The unpruned space is the
cross product over ranks × sites × invocations — 618,496 points for the
paper's small LAMMPS deployment, which is exactly why pruning matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..profiling.profiler import ApplicationProfile


@dataclass(frozen=True, order=True)
class InjectionPoint:
    """One (rank, call site, invocation) triple."""

    rank: int
    collective: str
    site: str
    invocation: int

    @property
    def site_key(self) -> tuple[str, str]:
        return (self.collective, self.site)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.collective}@{self.site}#inv{self.invocation}@rank{self.rank}"


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault: where (point) and what (parameter, bit).

    ``bit`` addresses the parameter's machine representation: for buffer
    parameters it is a flat bit offset into the buffer contents; for
    scalars/handles a bit index of the value; for vector parameters the
    pair ``(element, bit)`` is packed as ``element * 32 + bit``.
    """

    point: InjectionPoint
    param: str
    bit: int


def enumerate_points(profile: ApplicationProfile) -> list[InjectionPoint]:
    """The full, unpruned injection-point space of a profiled run."""
    points: list[InjectionPoint] = []
    for (rank, (name, site)), summary in sorted(profile.summaries.items()):
        for invocation in range(summary.n_invocations):
            points.append(InjectionPoint(rank, name, site, invocation))
    return points


def points_per_site(points: list[InjectionPoint]) -> dict[tuple[str, str], list[InjectionPoint]]:
    """Group points by static call site."""
    by_site: dict[tuple[str, str], list[InjectionPoint]] = {}
    for pt in points:
        by_site.setdefault(pt.site_key, []).append(pt)
    return by_site
