"""Single-bit-flip primitives.

The paper's fault model is one bit flip in one input parameter of one
collective invocation (§ II).  Parameters come in three machine
representations, each with its own flip:

* 32-bit signed integers (``count``, ``root``) — C ``int`` semantics,
  so flipping bit 31 makes the value negative;
* 64-bit pointer-like handles (``datatype``, ``op``, ``comm``);
* raw buffer bytes (``sendbuf``/``recvbuf`` contents) and the 32-bit
  elements of count/displacement vectors.
"""

from __future__ import annotations

import numpy as np

INT_BITS = 32
HANDLE_BITS = 64


def flip_int32(value: int, bit: int) -> int:
    """Flip one bit of a 32-bit signed integer (C ``int`` semantics)."""
    if not 0 <= bit < INT_BITS:
        raise ValueError(f"bit {bit} out of range for int32")
    u = np.uint32(np.int64(value) & 0xFFFFFFFF)
    u ^= np.uint32(1) << np.uint32(bit)
    return int(np.int32(u))


def flip_int64(value: int, bit: int) -> int:
    """Flip one bit of a 64-bit value (handles are 64-bit pointers)."""
    if not 0 <= bit < HANDLE_BITS:
        raise ValueError(f"bit {bit} out of range for int64")
    return int(np.int64(np.uint64(value & 0xFFFFFFFFFFFFFFFF) ^ (np.uint64(1) << np.uint64(bit))))


def flip_array_element(arr: np.ndarray, index: int, bit: int) -> None:
    """Flip one bit of a 32-bit slice of one array element, in place.

    Vector parameters (alltoallv counts/displacements) are C ``int``
    arrays; we flip within the low 32 bits regardless of storage width.
    """
    arr[index] = flip_int32(int(arr[index]), bit)


def random_buffer_bit(rng: np.random.Generator, nbytes: int) -> tuple[int, int]:
    """Uniformly pick ``(byte, bit)`` within an ``nbytes`` buffer."""
    if nbytes <= 0:
        raise ValueError("cannot pick a bit in an empty buffer")
    flat = int(rng.integers(0, nbytes * 8))
    return flat // 8, flat % 8
