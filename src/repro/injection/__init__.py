"""``repro.injection`` — the fault-injection engine.

Single-bit flips in the input parameters of collective operations,
classified into the six application responses of the paper's Table I —
plus the composable fault-model layer (:mod:`repro.injection.models`)
generalizing that space to multi-bit bursts, wire-level message faults,
rank crash/stall, and timeline-driven multi-fault scenarios.
"""

from .bitflip import flip_array_element, flip_int32, flip_int64, random_buffer_bit
from .campaign import Campaign, CampaignResult, PointResult
from .config import ConfigError, InjectionConfig
from .injector import FaultInjector, InjectionRecord, buffer_extent_bytes
from .models import (
    MODELS,
    SELECTABLE_MODELS,
    FaultModel,
    build_injector,
    draw_spec,
    model_for_spec,
)
from .multibit import BurstInjector
from .outcome import OUTCOME_ORDER, Outcome, classify_exception
from .runner import InjectionRunner, TestResult
from .scenario import (
    Scenario,
    ScenarioError,
    ScenarioInjector,
    ScenarioTask,
    load_scenario,
    parse_scenario,
    serialize_scenario,
)
from .space import FaultSpec, InjectionPoint, ModelSpec, enumerate_points, points_per_site
from .targets import (
    all_targets,
    buffer_targets,
    param_kind,
    pick_target,
    targets_for_policy,
)
from .wire import WireFaultInjector

__all__ = [
    "BurstInjector",
    "Campaign",
    "CampaignResult",
    "ConfigError",
    "FaultInjector",
    "FaultModel",
    "FaultSpec",
    "InjectionConfig",
    "InjectionPoint",
    "InjectionRecord",
    "InjectionRunner",
    "MODELS",
    "ModelSpec",
    "OUTCOME_ORDER",
    "Outcome",
    "PointResult",
    "SELECTABLE_MODELS",
    "Scenario",
    "ScenarioError",
    "ScenarioInjector",
    "ScenarioTask",
    "TestResult",
    "WireFaultInjector",
    "all_targets",
    "buffer_extent_bytes",
    "buffer_targets",
    "build_injector",
    "classify_exception",
    "draw_spec",
    "enumerate_points",
    "flip_array_element",
    "flip_int32",
    "flip_int64",
    "load_scenario",
    "model_for_spec",
    "param_kind",
    "parse_scenario",
    "pick_target",
    "points_per_site",
    "random_buffer_bit",
    "serialize_scenario",
    "targets_for_policy",
]
