"""``repro.injection`` — the fault-injection engine.

Single-bit flips in the input parameters of collective operations,
classified into the six application responses of the paper's Table I.
"""

from .bitflip import flip_array_element, flip_int32, flip_int64, random_buffer_bit
from .campaign import Campaign, CampaignResult, PointResult
from .config import ConfigError, InjectionConfig
from .injector import FaultInjector, InjectionRecord, buffer_extent_bytes
from .outcome import OUTCOME_ORDER, Outcome, classify_exception
from .runner import InjectionRunner, TestResult
from .space import FaultSpec, InjectionPoint, enumerate_points, points_per_site
from .targets import (
    all_targets,
    buffer_targets,
    param_kind,
    pick_target,
    targets_for_policy,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "ConfigError",
    "FaultInjector",
    "FaultSpec",
    "InjectionConfig",
    "InjectionPoint",
    "InjectionRecord",
    "InjectionRunner",
    "OUTCOME_ORDER",
    "Outcome",
    "PointResult",
    "TestResult",
    "all_targets",
    "buffer_extent_bytes",
    "buffer_targets",
    "classify_exception",
    "enumerate_points",
    "flip_array_element",
    "flip_int32",
    "flip_int64",
    "param_kind",
    "pick_target",
    "points_per_site",
    "random_buffer_bit",
    "targets_for_policy",
]
