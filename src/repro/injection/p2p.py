"""Point-to-point fault injection — the paper's future-work extension.

The paper closes with: "Even though these techniques were tested only
on the collective operations …, it can be applied to other programming
elements of an HPC application, which is a part of our future work."
This module applies the same fault model (one bit flip in one input
parameter of one invocation) to ``MPI_Send``/``MPI_Recv``.

It mirrors the collective machinery: a profiler that records p2p call
sites/stacks, point enumeration, an injector instrument, and a campaign
runner — all reusing the Table I outcome classification.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..apps.base import Application
from ..simmpi import Instrument, SimMPIError, run_app
from ..simmpi.calls import P2P_PARAMS, P2PCall
from ..simmpi.validation import resolve_datatype
from .bitflip import flip_int32, flip_int64
from .outcome import OUTCOME_ORDER, Outcome, classify_exception

#: Parameter → machine representation for the p2p surface.
P2P_PARAM_KINDS: dict[str, str] = {
    "buf": "buffer",
    "count": "scalar",
    "datatype": "handle",
    "dest": "scalar",
    "source": "scalar",
    "tag": "scalar",
    "comm": "handle",
}


@dataclass(frozen=True, order=True)
class P2PInjectionPoint:
    """One (rank, p2p call site, invocation) triple."""

    rank: int
    kind: str  # "Send" | "Recv"
    site: str
    invocation: int

    @property
    def site_key(self) -> tuple[str, str]:
        return (self.kind, self.site)


@dataclass(frozen=True)
class P2PFaultSpec:
    point: P2PInjectionPoint
    param: str
    bit: int | None


class P2PProfiler(Instrument):
    """Records p2p call records (opts in to the mutable-record path)."""

    wants_p2p_calls = True

    def __init__(self):
        self.calls: list[P2PCall] = []

    def on_p2p_call(self, ctx, call: P2PCall) -> None:
        self.calls.append(
            P2PCall(
                rank=call.rank,
                kind=call.kind,
                site=call.site,
                stack=call.stack,
                invocation=call.invocation,
                seq=call.seq,
                phase=call.phase,
                args=dict(call.args),
            )
        )


def enumerate_p2p_points(calls: list[P2PCall]) -> list[P2PInjectionPoint]:
    """The p2p injection-point space of a profiled run."""
    return sorted(
        {P2PInjectionPoint(c.rank, c.kind, c.site, c.invocation) for c in calls}
    )


class P2PFaultInjector(Instrument):
    """Flips one bit in one p2p operation's parameters, once per run."""

    wants_p2p_calls = True

    def __init__(self, spec: P2PFaultSpec, rng: np.random.Generator):
        self.spec = spec
        self.rng = rng
        self.fired = False
        self.bit: int | None = None

    def on_p2p_call(self, ctx, call: P2PCall) -> None:
        if self.fired:
            return
        p = self.spec.point
        if (
            call.rank != p.rank
            or call.kind != p.kind
            or call.site != p.site
            or call.invocation != p.invocation
        ):
            return
        param = self.spec.param
        kind = P2P_PARAM_KINDS[param]
        bit = self.spec.bit
        if kind == "scalar":
            if bit is None:
                bit = int(self.rng.integers(0, 32))
            call.args[param] = flip_int32(int(call.args[param]), bit)
        elif kind == "handle":
            if bit is None:
                bit = int(self.rng.integers(0, 64))
            call.args[param] = flip_int64(int(call.args[param]), bit)
        else:  # buffer contents
            dtype = resolve_datatype(ctx.runtime, call.args["datatype"], rank=ctx.rank)
            extent = int(call.args["count"]) * dtype.size
            if extent <= 0:
                self.fired = True
                return
            if bit is None:
                bit = int(self.rng.integers(0, extent * 8))
            ctx.memory.flip_bit(int(call.args["buf"]), bit)
        self.bit = bit
        self.fired = True


@dataclass
class P2PCampaignResult:
    """Aggregated p2p injection outcomes."""

    tests: list[tuple[P2PFaultSpec, Outcome]] = field(default_factory=list)

    def outcome_histogram(self) -> dict[Outcome, int]:
        counts = Counter(outcome for _, outcome in self.tests)
        return {o: counts.get(o, 0) for o in OUTCOME_ORDER}

    def by_param(self) -> dict[str, dict[Outcome, int]]:
        out: dict[str, Counter] = {}
        for spec, outcome in self.tests:
            out.setdefault(spec.param, Counter())[outcome] += 1
        return {
            param: {o: c.get(o, 0) for o in OUTCOME_ORDER}
            for param, c in sorted(out.items())
        }

    @property
    def error_rate(self) -> float:
        if not self.tests:
            return 0.0
        return sum(1 for _, o in self.tests if o.is_error) / len(self.tests)


def profile_p2p(app: Application) -> tuple[list[P2PCall], list, int]:
    """Profile an app's p2p surface; returns (calls, golden, steps)."""
    profiler = P2PProfiler()
    result = run_app(app.main, app.nranks, instruments=[profiler])
    return profiler.calls, result.results, result.steps


def p2p_campaign(
    app: Application,
    points: list[P2PInjectionPoint],
    tests_per_point: int = 20,
    seed: int = 0,
    golden: list | None = None,
    golden_steps: int | None = None,
    budget_factor: int = 8,
) -> P2PCampaignResult:
    """Bit-flip campaign over p2p injection points.

    Parameters are drawn uniformly from the operation's schema; outcome
    classification reuses Table I.
    """
    if golden is None or golden_steps is None:
        _, golden, golden_steps = profile_p2p(app)
    budget = max(golden_steps * budget_factor, 50_000)
    result = P2PCampaignResult()
    for i, point in enumerate(points):
        params = P2P_PARAMS[point.kind]
        for t in range(tests_per_point):
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=seed, spawn_key=(i, t))
            )
            param = params[int(rng.integers(0, len(params)))]
            spec = P2PFaultSpec(point, param, None)
            injector = P2PFaultInjector(spec, rng)
            try:
                with np.errstate(all="ignore"):
                    run = run_app(
                        app.main, app.nranks, instruments=[injector], step_budget=budget
                    )
            except SimMPIError as exc:
                result.tests.append((spec, classify_exception(exc)))
                continue
            ok = app.compare(golden, run.results)
            result.tests.append((spec, Outcome.SUCCESS if ok else Outcome.WRONG_ANS))
    return result
