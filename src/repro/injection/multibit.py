"""Multi-bit burst faults.

A burst flips ``width`` *adjacent* bits of one parameter — the DAVOS
"multiplicity > 1" faultload shape, modelling the spatial correlation of
real upsets (a particle strike or a stuck byte lane corrupts neighbouring
bits, not independent random ones).  The burst wraps within the
parameter's own bit extent so a late base bit still yields ``width``
flips.
"""

from __future__ import annotations

import numpy as np

from ..simmpi import CollectiveCall
from .bitflip import flip_array_element, flip_int32, flip_int64
from .injector import FaultInjector, buffer_extent_bytes
from .targets import param_kind

#: Burst width range when the spec does not pin one: 2..8 adjacent bits.
MIN_WIDTH = 2
MAX_WIDTH = 8


def draw_width(rng: np.random.Generator) -> int:
    """Uniform burst width in [MIN_WIDTH, MAX_WIDTH]."""
    return int(rng.integers(MIN_WIDTH, MAX_WIDTH + 1))


class BurstInjector(FaultInjector):
    """Flips ``width`` adjacent bits at one injection point, once per run.

    Reuses the single-bit injector's matching, record, and tracer
    plumbing; only the flip itself differs.  The record's ``bit`` is the
    base bit of the burst (the remaining flips are implied by the
    spec's width, echoed in the value transition strings).
    """

    def _width(self) -> int:
        width = getattr(self.spec, "width", 0)
        return width if width > 0 else draw_width(self.rng)

    def _inject(self, ctx, call: CollectiveCall) -> None:
        param = self.spec.param
        kind = param_kind(param)
        bit = self.spec.bit
        width = self._width()

        if kind == "scalar":
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, 32))
            before = int(call.args[param])
            value = before
            for i in range(width):
                value = flip_int32(value, (bit + i) % 32)
            call.args[param] = value
            self._finish(
                call, kind, bit,
                before=str(before), after=f"{value} (burst x{width})",
            )
        elif kind == "handle":
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, 64))
            before = int(call.args[param])
            value = before
            for i in range(width):
                value = flip_int64(value, (bit + i) % 64)
            call.args[param] = value
            self._finish(
                call, kind, bit,
                before=f"{before:#x}", after=f"{value:#x} (burst x{width})",
            )
        elif kind == "vector":
            arr = np.array(call.args[param], dtype=np.int64, copy=True)
            if arr.size == 0:
                self._finish(call, kind, -1, skipped=True)
                return
            span = arr.size * 32
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, span))
            before = int(arr[bit // 32])
            for i in range(width):
                flat = (bit + i) % span
                flip_array_element(arr, flat // 32, flat % 32)
            call.args[param] = arr
            self._finish(
                call, kind, bit,
                before=f"[{bit // 32}]={before}",
                after=f"[{bit // 32}]={int(arr[bit // 32])} (burst x{width})",
            )
        elif kind == "handle_vector":
            arr = np.array([int(h) for h in call.args[param]], dtype=np.int64)
            if arr.size == 0:
                self._finish(call, kind, -1, skipped=True)
                return
            span = arr.size * 64
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, span))
            before = int(arr[bit // 64])
            for i in range(width):
                flat = (bit + i) % span
                arr[flat // 64] = flip_int64(int(arr[flat // 64]), flat % 64)
            call.args[param] = arr
            self._finish(
                call, kind, bit,
                before=f"[{bit // 64}]={before:#x}",
                after=f"[{bit // 64}]={int(arr[bit // 64]):#x} (burst x{width})",
            )
        elif kind == "buffer":
            extent = buffer_extent_bytes(ctx, call, param)
            if extent <= 0:
                self._finish(call, kind, -1, extent, skipped=True)
                return
            span = extent * 8
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, span))
            addr = int(call.args[param])
            byte_addr = addr + bit // 8
            before = ctx.memory.read(byte_addr, 1)[0] if ctx.memory.in_arena(byte_addr) else None
            for i in range(width):
                ctx.memory.flip_bit(addr, (bit + i) % span)
            after = ctx.memory.read(byte_addr, 1)[0]
            self._finish(
                call, kind, bit, extent,
                before="" if before is None else f"byte {bit // 8}: {before:#04x}",
                after=f"byte {bit // 8}: {after:#04x} (burst x{width})",
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown parameter kind {kind!r}")
