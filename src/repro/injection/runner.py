"""Single fault-injection test execution.

One test = one fresh simulated job with one armed fault injector,
classified against the golden run.  The hang budget is calibrated from
the golden run's event count — the deterministic analogue of the paper's
wall-clock timeout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.base import Application
from ..profiling.profiler import ApplicationProfile, profile_application
from ..simmpi import SimMPIError, run_app
from .injector import FaultInjector, InjectionRecord
from .outcome import Outcome, classify_exception
from .space import FaultSpec

#: The injected run may legitimately run somewhat longer than golden
#: (e.g. extra solver cycles); beyond this factor it is declared hung.
DEFAULT_BUDGET_FACTOR = 8
MIN_BUDGET = 50_000


@dataclass(frozen=True)
class TestResult:
    """Outcome of one fault-injection test."""

    spec: FaultSpec
    outcome: Outcome
    record: InjectionRecord | None
    detail: str = ""

    @property
    def injected(self) -> bool:
        return self.record is not None and not self.record.skipped


class InjectionRunner:
    """Runs individual injection tests for one application instance."""

    def __init__(
        self,
        app: Application,
        profile: ApplicationProfile | None = None,
        budget_factor: int = DEFAULT_BUDGET_FACTOR,
        min_budget: int = MIN_BUDGET,
        algorithms: dict[str, str] | None = None,
    ):
        self.app = app
        self.algorithms = algorithms
        self.profile = (
            profile
            if profile is not None
            else profile_application(app, algorithms=algorithms)
        )
        self.step_budget = max(self.profile.golden_steps * budget_factor, min_budget)

    @property
    def golden_results(self):
        return self.profile.golden_results

    def run_one(self, spec: FaultSpec, rng: np.random.Generator) -> TestResult:
        """Execute one test and classify the application response."""
        injector = FaultInjector(spec, rng)
        try:
            # Corrupted data legitimately overflows in application
            # arithmetic; silence numpy's warnings for the faulty run.
            with np.errstate(all="ignore"):
                result = run_app(
                    self.app.main,
                    self.app.nranks,
                    instruments=[injector],
                    step_budget=self.step_budget,
                    algorithms=self.algorithms,
                )
        except SimMPIError as exc:
            return TestResult(spec, classify_exception(exc), injector.record, detail=str(exc))

        if self.app.compare(self.golden_results, result.results):
            return TestResult(spec, Outcome.SUCCESS, injector.record)
        return TestResult(spec, Outcome.WRONG_ANS, injector.record, detail="signature mismatch")
