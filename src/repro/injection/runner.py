"""Single fault-injection test execution.

One test = one fresh simulated job with one armed fault injector,
classified against the golden run.  The hang budget is calibrated from
the golden run's event count — the deterministic analogue of the paper's
wall-clock timeout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.base import Application
from ..obs.forensics import describe_fault, failure_detail, harness_failure_detail
from ..profiling.profiler import ApplicationProfile, profile_application
from ..simmpi import SimMPIError, run_app
from ..simmpi.memory import DEFAULT_ARENA_SIZE
from .injector import FaultInjector, InjectionRecord
from .models import build_injector
from .outcome import Outcome, classify_exception
from .space import FaultSpec

#: The injected run may legitimately run somewhat longer than golden
#: (e.g. extra solver cycles); beyond this factor it is declared hung.
DEFAULT_BUDGET_FACTOR = 8
MIN_BUDGET = 50_000


@dataclass(frozen=True)
class TestResult:
    """Outcome of one fault-injection test."""

    spec: FaultSpec
    outcome: Outcome
    record: InjectionRecord | None
    detail: str = ""
    #: True when the outcome was statically proven by
    #: :class:`repro.analyze.PreClassifier` and the dynamic run skipped.
    predicted: bool = False

    @property
    def injected(self) -> bool:
        return self.record is not None and not self.record.skipped


class InjectionRunner:
    """Runs individual injection tests for one application instance."""

    def __init__(
        self,
        app: Application,
        profile: ApplicationProfile | None = None,
        budget_factor: int = DEFAULT_BUDGET_FACTOR,
        min_budget: int = MIN_BUDGET,
        algorithms: dict[str, str] | None = None,
        alloc_cap: int | None = DEFAULT_ARENA_SIZE,
    ):
        self.app = app
        self.algorithms = algorithms
        #: Per-rank single-allocation cap (bytes) for injected runs: a
        #: corrupted size reaching ``ctx.alloc`` raises the simulated
        #: segfault path instead of attempting a host-sized allocation.
        self.alloc_cap = alloc_cap
        self.profile = (
            profile
            if profile is not None
            else profile_application(app, algorithms=algorithms)
        )
        self.step_budget = max(self.profile.golden_steps * budget_factor, min_budget)
        #: The exception that aborted the most recent :meth:`run_one`
        #: (``None`` for clean completion).  Lets callers build richer
        #: forensics (full wait-for graphs) than the summary in
        #: ``TestResult.detail``.
        self.last_exception: SimMPIError | None = None

    @property
    def golden_results(self):
        return self.profile.golden_results

    def run_one(
        self, spec: FaultSpec, rng: np.random.Generator, tracer=None
    ) -> TestResult:
        """Execute one test and classify the application response.

        When a tracer is supplied the whole run is traced (scheduler,
        contexts, memories, injector) and the armed fault is announced
        with a ``fault_armed`` event before the job starts.
        """
        injector = build_injector(spec, rng, tracer=tracer)
        self.last_exception = None
        if tracer is not None:
            p = spec.point
            tracer.emit(
                "fault_armed", p.rank,
                param=spec.param, bit=-1 if spec.bit is None else spec.bit,
                collective=p.collective, site=p.site, invocation=p.invocation,
            )
        try:
            # Corrupted data legitimately overflows in application
            # arithmetic; silence numpy's warnings for the faulty run.
            with np.errstate(all="ignore"):
                result = run_app(
                    self.app.main,
                    self.app.nranks,
                    instruments=[injector],
                    step_budget=self.step_budget,
                    algorithms=self.algorithms,
                    alloc_cap=self.alloc_cap,
                    tracer=tracer,
                    tap=getattr(injector, "tap", None),
                )
        except SimMPIError as exc:
            self.last_exception = exc
            return self.classify_error(spec, injector, exc)
        except Exception as exc:
            # Last-resort containment: the *harness* failed, not the
            # simulated application — a MemoryError, RecursionError, or
            # numpy crash provoked by a corrupted parameter must not
            # abort a million-test campaign.  Classify with forensics
            # instead of propagating; KeyboardInterrupt/SystemExit still
            # pass through so the campaign driver can shut down cleanly.
            self.last_exception = None
            return self.classify_harness_error(spec, injector, exc)

        return self.classify_completion(spec, injector, result.results)

    # -- classification -----------------------------------------------
    #
    # Shared between run_one and the snapshot-and-fork engine
    # (repro.snapshot): a forked child classifies its own continuation
    # with exactly these rules, so forked and from-scratch TestResults
    # are constructed from identical code paths.

    def classify_error(
        self, spec: FaultSpec, injector: FaultInjector, exc: SimMPIError
    ) -> TestResult:
        """Classify a run aborted by a simulated-MPI error."""
        return TestResult(
            spec,
            classify_exception(exc),
            injector.record,
            detail=failure_detail(exc, injector.record),
        )

    def classify_harness_error(
        self, spec: FaultSpec, injector: FaultInjector, exc: Exception
    ) -> TestResult:
        """Classify a harness failure (contained as ``TOOL_ERROR``)."""
        return TestResult(
            spec,
            Outcome.TOOL_ERROR,
            injector.record,
            detail=harness_failure_detail(exc, injector.record),
        )

    def classify_completion(
        self, spec: FaultSpec, injector: FaultInjector, results: list
    ) -> TestResult:
        """Classify a run that completed: golden comparison."""
        try:
            matches = self.app.compare(self.golden_results, results)
        except Exception as exc:
            # The golden comparison choked on corrupted results — still a
            # harness fault, contained the same way as a crashed run.
            return self.classify_harness_error(spec, injector, exc)
        if matches:
            return TestResult(spec, Outcome.SUCCESS, injector.record)
        detail = "wrong answer: result signature differs from golden run"
        fault = describe_fault(injector.record)
        if fault:
            detail += f"; fault: {fault}"
        return TestResult(spec, Outcome.WRONG_ANS, injector.record, detail=detail)
