"""The six application responses to a faulty collective (Table I).

Classification precedence follows what a real job launcher observes:

1. the application's own error handler fired → ``APP_DETECTED``;
2. the MPI library reported an error → ``MPI_ERR``;
3. the process took a memory fault (including any unhandled language
   error, which on the C codes the paper studies manifests as a
   signal) → ``SEG_FAULT``;
4. the job never terminated (deadlock or runaway loop, killed by the
   harness budget, the paper's timeout) → ``INF_LOOP``;
5. the job exited cleanly: results match the golden run → ``SUCCESS``,
   otherwise → ``WRONG_ANS``.

One extra member sits outside the paper's taxonomy: ``TOOL_ERROR``
marks a test whose *harness* failed — the simulator crashed on an
unclassifiable Python error, or a worker process died repeatedly and
the unit was quarantined.  It is an infrastructure verdict, not an
application response, so it is excluded from every paper-facing
statistic: :data:`OUTCOME_ORDER` (rendering, histograms, ML labels)
does not contain it, :attr:`Outcome.is_error` is ``False`` for it, and
error-rate denominators skip it.
"""

from __future__ import annotations

from enum import Enum

from ..simmpi import (
    AppError,
    DeadlockError,
    FiberCrashed,
    MPIError,
    SegmentationFault,
    StepBudgetExceeded,
)


class Outcome(str, Enum):
    """Application response types (Table I), plus the harness verdict."""

    SUCCESS = "SUCCESS"
    APP_DETECTED = "APP_DETECTED"
    MPI_ERR = "MPI_ERR"
    SEG_FAULT = "SEG_FAULT"
    WRONG_ANS = "WRONG_ANS"
    INF_LOOP = "INF_LOOP"
    #: The harness itself failed (simulator crash, quarantined unit) —
    #: not one of the paper's six application responses.
    TOOL_ERROR = "TOOL_ERROR"

    @property
    def is_application_response(self) -> bool:
        """True for the paper's six Table I classes; False for
        harness-level ``TOOL_ERROR`` verdicts."""
        return self is not Outcome.TOOL_ERROR

    @property
    def is_error(self) -> bool:
        """Everything but SUCCESS counts toward the paper's error rate
        — except TOOL_ERROR, which is no application response at all."""
        return self is not Outcome.SUCCESS and self is not Outcome.TOOL_ERROR


#: Fixed rendering/iteration order matching the paper's figures.
#: Deliberately excludes TOOL_ERROR: sensitivity statistics, histograms,
#: and ML labels cover application responses only.
OUTCOME_ORDER: tuple[Outcome, ...] = (
    Outcome.SUCCESS,
    Outcome.APP_DETECTED,
    Outcome.MPI_ERR,
    Outcome.SEG_FAULT,
    Outcome.WRONG_ANS,
    Outcome.INF_LOOP,
)


def classify_exception(exc: BaseException) -> Outcome:
    """Map a run-aborting exception to its Table I response type."""
    if isinstance(exc, AppError):
        return Outcome.APP_DETECTED
    if isinstance(exc, MPIError):
        return Outcome.MPI_ERR
    if isinstance(exc, SegmentationFault):
        return Outcome.SEG_FAULT
    if isinstance(exc, (DeadlockError, StepBudgetExceeded)):
        return Outcome.INF_LOOP
    if isinstance(exc, FiberCrashed):
        # An arbitrary language-level crash in application code: on the
        # paper's C workloads this is a signal, i.e. a segfault.
        return Outcome.SEG_FAULT
    raise TypeError(f"unclassifiable exception {type(exc).__name__}: {exc}")
