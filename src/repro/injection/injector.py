"""The fault-injection instrument.

A :class:`FaultInjector` is armed with one :class:`FaultSpec`; when the
matching collective invocation occurs on the matching rank, it flips one
bit — in the parameter value (count/root/handles/vectors) or in the data
buffer contents — *before* the call is validated and executed, matching
the paper's "faults are injected before the collective call is
enforced".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simmpi import CollectiveCall, Instrument
from ..simmpi.validation import resolve_comm, resolve_datatype
from .bitflip import flip_array_element, flip_int32, flip_int64
from .space import FaultSpec
from .targets import param_kind


@dataclass(frozen=True)
class InjectionRecord:
    """What a fault injector actually did during a run.

    Besides the flip itself, the record carries the faulting call
    (collective/site/invocation) and the value transition
    (``before -> after``) so failure forensics can describe the fault
    without re-running anything (see
    :func:`repro.obs.forensics.describe_fault`).
    """

    param: str
    kind: str
    bit: int
    extent_bytes: int = 0  # buffer faults only
    skipped: bool = False  # e.g. zero-length buffer
    collective: str = ""   # name of the faulting collective
    site: str = ""         # call site id (file:line)
    invocation: int = -1   # per-site invocation index
    before: str = ""       # corrupted value before the flip
    after: str = ""        # corrupted value after the flip


def buffer_extent_bytes(ctx, call: CollectiveCall, param: str) -> int:
    """Byte extent of a buffer parameter as the *clean* call defines it.

    Root-side send buffers of Scatter and receive buffers of
    Gather/Allgather/Alltoall span ``count × comm_size`` elements;
    alltoallv extents follow counts + displacements.
    """
    args = call.args
    name = call.name
    if name != "Alltoallw":
        dtype = resolve_datatype(ctx.runtime, args["datatype"], rank=ctx.rank)
        es = dtype.size
    else:
        es = 1  # alltoallw extents are computed per peer below

    def comm_size() -> int:
        return resolve_comm(ctx.runtime, args["comm"], rank=ctx.rank).size

    def vspan(counts_key: str, displs_key: str) -> int:
        counts = np.asarray(args[counts_key], dtype=np.int64)
        displs = np.asarray(args[displs_key], dtype=np.int64)
        if counts.size == 0:
            return 0
        return int((displs + counts).max()) * es

    if name in ("Bcast", "Reduce", "Allreduce", "Scan", "Exscan"):
        return int(args["count"]) * es
    if name == "Alltoallv":
        if param == "sendbuf":
            return vspan("sendcounts", "sdispls")
        return vspan("recvcounts", "rdispls")
    if name == "Alltoallw":
        # Byte displacements and per-peer datatypes.
        side = "send" if param == "sendbuf" else "recv"
        counts = np.asarray(args[f"{side}counts"], dtype=np.int64)
        displs = np.asarray(args["sdispls" if side == "send" else "rdispls"], dtype=np.int64)
        sizes = np.array(
            [
                resolve_datatype(ctx.runtime, h, rank=ctx.rank).size
                for h in args[f"{side}types"]
            ],
            dtype=np.int64,
        )
        if counts.size == 0:
            return 0
        return int((displs + counts * sizes).max())
    if name == "Reduce_scatter":
        per = int(args["recvcount"]) * es
        return per * comm_size() if param == "sendbuf" else per
    if name == "Gatherv":
        if param == "sendbuf":
            return int(args["sendcount"]) * es
        return vspan("recvcounts", "displs")
    if name == "Scatterv":
        if param == "sendbuf":
            return vspan("sendcounts", "displs")
        return int(args["recvcount"]) * es
    if name == "Allgatherv":
        if param == "sendbuf":
            return int(args["sendcount"]) * es
        return vspan("recvcounts", "displs")
    per_rank = int(args["sendcount" if param == "sendbuf" else "recvcount"])
    if name == "Scatter":
        return per_rank * (comm_size() if param == "sendbuf" else 1) * es
    if name == "Gather":
        return per_rank * (1 if param == "sendbuf" else comm_size()) * es
    if name in ("Allgather", "Alltoall"):
        return per_rank * (1 if param == "sendbuf" else comm_size()) * es
    raise ValueError(f"{name} has no buffer parameter {param!r}")  # pragma: no cover


class FaultInjector(Instrument):
    """Flips one bit at one injection point, once per run."""

    def __init__(self, spec: FaultSpec, rng: np.random.Generator, tracer=None):
        self.spec = spec
        self.rng = rng
        self.tracer = tracer
        self.record: InjectionRecord | None = None

    @property
    def fired(self) -> bool:
        return self.record is not None

    def on_collective(self, ctx, call: CollectiveCall) -> None:
        if self.record is not None:
            return
        p = self.spec.point
        if (
            call.rank != p.rank
            or call.name != p.collective
            or call.site != p.site
            or call.invocation != p.invocation
        ):
            return
        self._inject(ctx, call)

    # -- the actual flip ------------------------------------------------

    def _finish(
        self,
        call: CollectiveCall,
        kind: str,
        bit: int,
        extent: int = 0,
        skipped: bool = False,
        before: str = "",
        after: str = "",
    ) -> None:
        self.record = InjectionRecord(
            self.spec.param,
            kind,
            bit,
            extent,
            skipped,
            collective=call.name,
            site=call.site,
            invocation=call.invocation,
            before=before,
            after=after,
        )
        if self.tracer is not None:
            self.tracer.emit(
                "fault_fired", call.rank,
                param=self.spec.param, param_kind=kind, bit=bit,
                collective=call.name, site=call.site, invocation=call.invocation,
                skipped=skipped, before=before, after=after,
            )

    def _inject(self, ctx, call: CollectiveCall) -> None:
        param = self.spec.param
        kind = param_kind(param)
        bit = self.spec.bit

        if kind == "scalar":
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, 32))
            before = int(call.args[param])
            call.args[param] = flip_int32(before, bit)
            self._finish(call, kind, bit, before=str(before), after=str(call.args[param]))
        elif kind == "handle":
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, 64))
            before = int(call.args[param])
            call.args[param] = flip_int64(before, bit)
            self._finish(
                call, kind, bit, before=f"{before:#x}", after=f"{call.args[param]:#x}"
            )
        elif kind == "vector":
            arr = np.array(call.args[param], dtype=np.int64, copy=True)
            if arr.size == 0:
                self._finish(call, kind, -1, skipped=True)
                return
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, arr.size * 32))
            before = int(arr[bit // 32])
            flip_array_element(arr, bit // 32, bit % 32)
            call.args[param] = arr
            self._finish(
                call, kind, bit,
                before=f"[{bit // 32}]={before}", after=f"[{bit // 32}]={int(arr[bit // 32])}",
            )
        elif kind == "handle_vector":
            arr = np.array([int(h) for h in call.args[param]], dtype=np.int64)
            if arr.size == 0:
                self._finish(call, kind, -1, skipped=True)
                return
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, arr.size * 64))
            before = int(arr[bit // 64])
            arr[bit // 64] = flip_int64(before, bit % 64)
            call.args[param] = arr
            self._finish(
                call, kind, bit,
                before=f"[{bit // 64}]={before:#x}", after=f"[{bit // 64}]={int(arr[bit // 64]):#x}",
            )
        elif kind == "buffer":
            extent = buffer_extent_bytes(ctx, call, param)
            if extent <= 0:
                self._finish(call, kind, -1, extent, skipped=True)
                return
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, extent * 8))
            addr = int(call.args[param])
            byte_addr = addr + bit // 8
            before = ctx.memory.read(byte_addr, 1)[0] if ctx.memory.in_arena(byte_addr) else None
            ctx.memory.flip_bit(addr, bit)
            after = ctx.memory.read(byte_addr, 1)[0]
            self._finish(
                call, kind, bit, extent,
                before="" if before is None else f"byte {bit // 8}: {before:#04x}",
                after=f"byte {bit // 8}: {after:#04x}",
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown parameter kind {kind!r}")
