"""The fault-injection instrument.

A :class:`FaultInjector` is armed with one :class:`FaultSpec`; when the
matching collective invocation occurs on the matching rank, it flips one
bit — in the parameter value (count/root/handles/vectors) or in the data
buffer contents — *before* the call is validated and executed, matching
the paper's "faults are injected before the collective call is
enforced".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simmpi import CollectiveCall, Instrument
from ..simmpi.validation import resolve_comm, resolve_datatype
from .bitflip import flip_array_element, flip_int32, flip_int64
from .space import FaultSpec
from .targets import param_kind


@dataclass(frozen=True)
class InjectionRecord:
    """What a fault injector actually did during a run."""

    param: str
    kind: str
    bit: int
    extent_bytes: int = 0  # buffer faults only
    skipped: bool = False  # e.g. zero-length buffer


def buffer_extent_bytes(ctx, call: CollectiveCall, param: str) -> int:
    """Byte extent of a buffer parameter as the *clean* call defines it.

    Root-side send buffers of Scatter and receive buffers of
    Gather/Allgather/Alltoall span ``count × comm_size`` elements;
    alltoallv extents follow counts + displacements.
    """
    args = call.args
    name = call.name
    if name != "Alltoallw":
        dtype = resolve_datatype(ctx.runtime, args["datatype"], rank=ctx.rank)
        es = dtype.size
    else:
        es = 1  # alltoallw extents are computed per peer below

    def comm_size() -> int:
        return resolve_comm(ctx.runtime, args["comm"], rank=ctx.rank).size

    def vspan(counts_key: str, displs_key: str) -> int:
        counts = np.asarray(args[counts_key], dtype=np.int64)
        displs = np.asarray(args[displs_key], dtype=np.int64)
        if counts.size == 0:
            return 0
        return int((displs + counts).max()) * es

    if name in ("Bcast", "Reduce", "Allreduce", "Scan", "Exscan"):
        return int(args["count"]) * es
    if name == "Alltoallv":
        if param == "sendbuf":
            return vspan("sendcounts", "sdispls")
        return vspan("recvcounts", "rdispls")
    if name == "Alltoallw":
        # Byte displacements and per-peer datatypes.
        side = "send" if param == "sendbuf" else "recv"
        counts = np.asarray(args[f"{side}counts"], dtype=np.int64)
        displs = np.asarray(args["sdispls" if side == "send" else "rdispls"], dtype=np.int64)
        sizes = np.array(
            [
                resolve_datatype(ctx.runtime, h, rank=ctx.rank).size
                for h in args[f"{side}types"]
            ],
            dtype=np.int64,
        )
        if counts.size == 0:
            return 0
        return int((displs + counts * sizes).max())
    if name == "Reduce_scatter":
        per = int(args["recvcount"]) * es
        return per * comm_size() if param == "sendbuf" else per
    if name == "Gatherv":
        if param == "sendbuf":
            return int(args["sendcount"]) * es
        return vspan("recvcounts", "displs")
    if name == "Scatterv":
        if param == "sendbuf":
            return vspan("sendcounts", "displs")
        return int(args["recvcount"]) * es
    if name == "Allgatherv":
        if param == "sendbuf":
            return int(args["sendcount"]) * es
        return vspan("recvcounts", "displs")
    per_rank = int(args["sendcount" if param == "sendbuf" else "recvcount"])
    if name == "Scatter":
        return per_rank * (comm_size() if param == "sendbuf" else 1) * es
    if name == "Gather":
        return per_rank * (1 if param == "sendbuf" else comm_size()) * es
    if name in ("Allgather", "Alltoall"):
        return per_rank * (1 if param == "sendbuf" else comm_size()) * es
    raise ValueError(f"{name} has no buffer parameter {param!r}")  # pragma: no cover


class FaultInjector(Instrument):
    """Flips one bit at one injection point, once per run."""

    def __init__(self, spec: FaultSpec, rng: np.random.Generator):
        self.spec = spec
        self.rng = rng
        self.record: InjectionRecord | None = None

    @property
    def fired(self) -> bool:
        return self.record is not None

    def on_collective(self, ctx, call: CollectiveCall) -> None:
        if self.record is not None:
            return
        p = self.spec.point
        if (
            call.rank != p.rank
            or call.name != p.collective
            or call.site != p.site
            or call.invocation != p.invocation
        ):
            return
        self._inject(ctx, call)

    # -- the actual flip ------------------------------------------------

    def _inject(self, ctx, call: CollectiveCall) -> None:
        param = self.spec.param
        kind = param_kind(param)
        bit = self.spec.bit

        if kind == "scalar":
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, 32))
            call.args[param] = flip_int32(int(call.args[param]), bit)
            self.record = InjectionRecord(param, kind, bit)
        elif kind == "handle":
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, 64))
            call.args[param] = flip_int64(int(call.args[param]), bit)
            self.record = InjectionRecord(param, kind, bit)
        elif kind == "vector":
            arr = np.array(call.args[param], dtype=np.int64, copy=True)
            if arr.size == 0:
                self.record = InjectionRecord(param, kind, -1, skipped=True)
                return
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, arr.size * 32))
            flip_array_element(arr, bit // 32, bit % 32)
            call.args[param] = arr
            self.record = InjectionRecord(param, kind, bit)
        elif kind == "handle_vector":
            arr = np.array([int(h) for h in call.args[param]], dtype=np.int64)
            if arr.size == 0:
                self.record = InjectionRecord(param, kind, -1, skipped=True)
                return
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, arr.size * 64))
            arr[bit // 64] = flip_int64(int(arr[bit // 64]), bit % 64)
            call.args[param] = arr
            self.record = InjectionRecord(param, kind, bit)
        elif kind == "buffer":
            extent = buffer_extent_bytes(ctx, call, param)
            if extent <= 0:
                self.record = InjectionRecord(param, kind, -1, extent, skipped=True)
                return
            if bit is None or bit < 0:
                bit = int(self.rng.integers(0, extent * 8))
            ctx.memory.flip_bit(int(call.args[param]), bit)
            self.record = InjectionRecord(param, kind, bit, extent)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown parameter kind {kind!r}")
