"""FastFIT runtime configuration (the paper's Table II).

The original tool is driven by environment variables read by its
``Config Generation`` module; this reproduction accepts the same
variables (``FASTFIT_`` prefixed) or explicit constructor arguments.

===========  =========  ===========================================
Abbreviation Width      Meaning
===========  =========  ===========================================
NUM_INJ      unlimited  Number of injected faults (tests to run)
INV_ID       3          Id of injected invocation
CALL_ID      3          Id of injected MPI collective call site
RANK_ID      unlimited  Id of injected rank
PARAM_ID     1          Id of injected parameter
===========  =========  ===========================================

Widths bound the decimal digits accepted from the environment, as in
the paper's table.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

ENV_PREFIX = "FASTFIT_"

#: (name, max decimal width or None for unlimited)
_FIELDS: tuple[tuple[str, int | None], ...] = (
    ("NUM_INJ", None),
    ("INV_ID", 3),
    ("CALL_ID", 3),
    ("RANK_ID", None),
    ("PARAM_ID", 1),
)


class ConfigError(ValueError):
    """Raised for malformed FastFIT configuration values."""


def _parse(name: str, raw: str, width: int | None) -> int:
    raw = raw.strip()
    if not raw.lstrip("-").isdigit():
        raise ConfigError(f"{name} must be an integer, got {raw!r}")
    if width is not None and len(raw.lstrip("-")) > width:
        raise ConfigError(f"{name} exceeds its width of {width} digits: {raw!r}")
    return int(raw)


@dataclass(frozen=True)
class InjectionConfig:
    """One fault-injection test's coordinates (Table II).

    ``call_id`` indexes the profiled call-site list (sorted order);
    ``param_id`` indexes the collective's parameter tuple.
    """

    num_inj: int = 1
    inv_id: int = 0
    call_id: int = 0
    rank_id: int = 0
    param_id: int = 0

    def __post_init__(self):
        if self.num_inj < 0:
            raise ConfigError(f"NUM_INJ must be non-negative, got {self.num_inj}")
        for label, value in (
            ("INV_ID", self.inv_id),
            ("CALL_ID", self.call_id),
            ("RANK_ID", self.rank_id),
            ("PARAM_ID", self.param_id),
        ):
            if value < 0:
                raise ConfigError(f"{label} must be non-negative, got {value}")

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "InjectionConfig":
        """Build a config from ``FASTFIT_*`` environment variables."""
        env = os.environ if env is None else env
        values: dict[str, int] = {}
        for name, width in _FIELDS:
            raw = env.get(ENV_PREFIX + name)
            if raw is not None:
                values[name.lower()] = _parse(name, raw, width)
        return cls(**values)

    def to_env(self) -> dict[str, str]:
        """The equivalent environment-variable map."""
        return {
            ENV_PREFIX + "NUM_INJ": str(self.num_inj),
            ENV_PREFIX + "INV_ID": str(self.inv_id),
            ENV_PREFIX + "CALL_ID": str(self.call_id),
            ENV_PREFIX + "RANK_ID": str(self.rank_id),
            ENV_PREFIX + "PARAM_ID": str(self.param_id),
        }
