"""The adaptive steering loop: uncertainty-sampled injection batches
with per-point sequential stopping.

``ml_driven_campaign`` (paper § III-C) walks the point space in a fixed
shuffled order and spends the full ``tests_per_point`` budget at every
point it visits.  :func:`adaptive_campaign` attacks both axes at once:

* **which points** — after every batch the freshly retrained forest
  scores the unexplored space and the next batch is the *most
  uncertain* slice of it (:mod:`repro.steer.sampler`), so the model's
  decision boundary gets measured first and confidently-predicted
  regions are deferred (often forever);
* **how many tests per point** — every point's test stream ends early
  once the Wilson interval over its outcome histogram closes below
  ``ci_width`` (:mod:`repro.steer.stopping`), so degenerate points cost
  ~``z²(1-w)/w`` tests instead of the full budget.

Determinism contract
--------------------
The whole trajectory — batch membership, per-point truncation indices,
round accuracies — is a pure function of ``(app, points, config)``:

* test RNGs come from the campaign's
  ``SeedSequence(seed, (global_point_index, test_index))`` contract, and
  batches pass their **global** indices through
  ``Campaign.run(point_indices=...)``, so a point draws identical test
  streams whether it is visited in round 0 or round 5 (or by a plain
  campaign);
* stopping is a pure function of each point's ordered result prefix
  (see :class:`~repro.steer.stopping.SequentialStopper`);
* batch selection is a pure sort over model scores, and the model is a
  pure function of the (deterministic) results it was fitted on.

Therefore serial, ``jobs=N``, and killed-and-resumed (``--db`` +
``resume=True``) runs produce bit-identical trajectories.

Store identity
--------------
All batches of one steering run land in **one** campaign row: the
digest is computed once over the *full* candidate list plus the
steering parameters (via ``campaign_digest(extra=...)``) and passed to
every ``Campaign.run`` as an override.  A resumed run recomputes the
same digest, replays recorded units from the store, and re-derives the
identical trajectory from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..apps.base import Application
from ..injection.campaign import Campaign, PointResult
from ..injection.space import InjectionPoint
from ..ml.features import features_matrix
from ..ml.metrics import accuracy
from ..ml.random_forest import RandomForestClassifier
from ..profiling.profiler import ApplicationProfile
from ..pruning.mldriven import Labeler, level_labeler
from .sampler import SAMPLER_MODES, select_batch, uncertainty_scores
from .stopping import DEFAULT_Z, SequentialStopper


@dataclass(frozen=True)
class SteeringRound:
    """One inject → verify → retrain round of the adaptive loop."""

    round_no: int
    #: Global indices of the points injected this round (sorted).
    point_indices: tuple[int, ...]
    #: ``len(point_indices) * tests_per_point`` — the fixed-budget cost.
    tests_planned: int
    #: Tests actually executed (sequential stopping truncates streams).
    tests_run: int
    #: Verification accuracy of the *incoming* model on this round's
    #: fresh batch; ``None`` for round 0 (no model existed yet).
    accuracy: float | None
    #: Mean acquisition score of the selected batch; ``None`` for the
    #: seed round (selection was order-based, not model-based).
    mean_uncertainty: float | None

    @property
    def tests_saved(self) -> int:
        return max(0, self.tests_planned - self.tests_run)


@dataclass
class SteeringResult:
    """Outcome of one adaptive steering campaign."""

    accuracy_target: float
    ci_width: float
    budget: int | None
    label_names: tuple[str, ...]
    tested: dict[InjectionPoint, PointResult] = field(default_factory=dict)
    predicted: dict[InjectionPoint, int] = field(default_factory=dict)
    rounds: list[SteeringRound] = field(default_factory=list)
    model: RandomForestClassifier | None = None
    reached_target: bool = False
    #: Why the loop ended: ``"accuracy"`` (target reached),
    #: ``"budget"`` (next batch would not fit), or ``"exhausted"``
    #: (every point measured — the degenerate full campaign).
    stop_reason: str = ""

    @property
    def total_points(self) -> int:
        return len(self.tested) + len(self.predicted)

    @property
    def tests_run(self) -> int:
        return sum(r.tests_run for r in self.rounds)

    @property
    def tests_saved(self) -> int:
        """Tests skipped *within* visited points by sequential stopping
        (point-level skips show up in :attr:`predicted` instead)."""
        return sum(r.tests_saved for r in self.rounds)

    @property
    def test_reduction(self) -> float:
        """Fraction of points resolved by prediction instead of injection."""
        total = self.total_points
        return len(self.predicted) / total if total else 0.0

    @property
    def final_accuracy(self) -> float:
        for r in reversed(self.rounds):
            if r.accuracy is not None:
                return r.accuracy
        return 0.0

    def curve(self) -> list[tuple[int, float]]:
        """The accuracy-vs-budget curve: ``(cumulative tests, accuracy)``
        per verified round — the report's steering plot."""
        out: list[tuple[int, float]] = []
        spent = 0
        for r in self.rounds:
            spent += r.tests_run
            if r.accuracy is not None:
                out.append((spent, r.accuracy))
        return out


def adaptive_campaign(
    app: Application,
    profile: ApplicationProfile,
    points: Sequence[InjectionPoint],
    labeler: Labeler | None = None,
    label_names: tuple[str, ...] | None = None,
    accuracy_target: float = 0.65,
    ci_width: float = 0.25,
    budget: int | None = None,
    tests_per_point: int = 40,
    batch_size: int | None = None,
    param_policy: str = "buffer",
    seed: int = 0,
    n_estimators: int = 24,
    min_tests: int = 6,
    z: float = DEFAULT_Z,
    sampler_mode: str = "margin",
    metrics=None,
    jobs: int = 1,
    db_path=None,
    resume: bool = False,
    snapshot: bool = True,
    fault_model: str = "bitflip",
    progress_sinks=None,
    progress_every: int = 1,
) -> SteeringResult:
    """Run the adaptive inject → verify → retrain → steer loop.

    ``budget`` caps the total number of injected tests; the loop never
    starts a batch it could not afford at the worst case (every stream
    running to ``tests_per_point``), so the cap is never exceeded.
    ``accuracy_target`` stops the loop once the incoming model predicts
    a fresh uncertainty-sampled batch that well — a *harder* bar than
    ``ml_driven_campaign``'s, since the batch is adversarially chosen.

    ``metrics`` optionally records round accuracies and the final
    tested/predicted/saved split under ``steer.*`` (the inner campaign
    also records ``campaign.*`` including ``campaign.tests_saved``).
    """
    if labeler is None:
        labeler, label_names = level_labeler()
    if label_names is None:
        raise ValueError("label_names required when passing a custom labeler")
    if not 0.0 < accuracy_target <= 1.0:
        raise ValueError(
            f"accuracy_target must be in (0, 1], got {accuracy_target}"
        )
    if budget is not None and budget < 1:
        raise ValueError(f"budget must be >= 1 test, got {budget}")
    if sampler_mode not in SAMPLER_MODES:
        raise ValueError(
            f"unknown sampler mode {sampler_mode!r}; "
            f"choices: {', '.join(SAMPLER_MODES)}"
        )
    points = list(points)
    if not points:
        raise ValueError("adaptive_campaign needs at least one injection point")
    if batch_size is None:
        batch_size = max(4, len(points) // 8)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")

    stopper = SequentialStopper(ci_width=ci_width, min_tests=min_tests, z=z)
    rng = np.random.default_rng(seed)
    order = [int(i) for i in rng.permutation(len(points))]

    digest = None
    if db_path is not None:
        # One digest for the whole steering run, over the FULL candidate
        # list plus the steering knobs — every batch joins the same
        # campaign row, and a differently-steered run cannot collide.
        from ..exec.checkpoint import campaign_digest

        layout = "s1" if snapshot else "p1"
        digest = campaign_digest(
            app,
            seed,
            tests_per_point,
            param_policy,
            max(1, tests_per_point),  # stopper forces whole-point units
            points,
            layout=layout,
            fault_model=fault_model,
            extra={
                "steer": {
                    "accuracy_target": accuracy_target,
                    "stopper": stopper.fingerprint(),
                    "budget": budget,
                    "batch_size": batch_size,
                    "n_estimators": n_estimators,
                    "sampler": sampler_mode,
                }
            },
        )

    campaign = Campaign(
        app,
        profile,
        tests_per_point=tests_per_point,
        param_policy=param_policy,
        seed=seed,
        metrics=metrics,
        jobs=jobs,
        db_path=db_path,
        resume=resume,
        snapshot=snapshot,
        fault_model=fault_model,
        progress_sinks=progress_sinks,
        progress_every=progress_every,
        stopper=stopper,
    )

    result = SteeringResult(
        accuracy_target=accuracy_target,
        ci_width=ci_width,
        budget=budget,
        label_names=label_names,
    )
    X_all = features_matrix(profile, points)

    def labels_of(
        prs: dict[InjectionPoint, PointResult],
    ) -> tuple[list[InjectionPoint], np.ndarray]:
        pts = sorted(prs)
        return pts, np.array([labeler(prs[p]) for p in pts], dtype=np.int64)

    model: RandomForestClassifier | None = None
    tested_idx: set[int] = set()
    spent = 0
    round_no = 0
    while True:
        unexplored = sorted(set(range(len(points))) - tested_idx)
        if not unexplored:
            result.stop_reason = "exhausted"
            break
        n_take = min(batch_size, len(unexplored))
        if budget is not None:
            # Worst-case affordability: assume every stream runs to the
            # full tests_per_point, so the budget is a hard ceiling.
            affordable = (budget - spent) // tests_per_point
            n_take = min(n_take, affordable)
        if n_take <= 0:
            result.stop_reason = "budget"
            break

        mean_unc: float | None = None
        if model is None:
            # Seed round: no model yet — take the head of the seeded
            # permutation, exactly like ml_driven_campaign's first batch.
            batch = [i for i in order if i in set(unexplored)][:n_take]
        else:
            scores = uncertainty_scores(
                model, X_all[np.array(unexplored)], mode=sampler_mode
            )
            batch = select_batch(unexplored, scores, n_take)
            by_cand = dict(zip(unexplored, scores))
            mean_unc = float(np.mean([by_cand[i] for i in batch]))
        batch_sorted = sorted(batch)

        # Global indices preserve the SeedSequence contract and (with
        # the site-sorted order) the snapshot engine's park locality.
        sub = campaign.run(
            [points[i] for i in batch_sorted],
            point_indices=batch_sorted,
            digest=digest,
        )
        if db_path is not None:
            # Batches after the first must not cascade-wipe the row.
            campaign.resume = True
        measured = {points[i]: sub.points[points[i]] for i in batch_sorted}
        round_tests = sub.n_tests()
        spent += round_tests
        tested_idx.update(batch_sorted)

        acc: float | None = None
        if model is not None:
            # Verify the incoming model on the fresh batch *before*
            # retraining on it — an honest, adversarially-sampled probe.
            pts, y_true = labels_of(measured)
            y_pred = model.predict(features_matrix(profile, pts))
            acc = accuracy(y_true, y_pred)
            if metrics is not None:
                metrics.histogram("steer.round_accuracy").observe(acc)
        result.tested.update(measured)
        result.rounds.append(
            SteeringRound(
                round_no=round_no,
                point_indices=tuple(batch_sorted),
                tests_planned=len(batch_sorted) * tests_per_point,
                tests_run=round_tests,
                accuracy=acc,
                mean_uncertainty=mean_unc,
            )
        )
        _record_round(db_path, digest, result.rounds[-1], spent, "")

        if acc is not None and acc >= accuracy_target:
            result.reached_target = True
            result.stop_reason = "accuracy"
            break

        pts, y = labels_of(result.tested)
        model = RandomForestClassifier(
            n_estimators=n_estimators, seed=seed + round_no
        ).fit(features_matrix(profile, pts), y)
        round_no += 1

    result.model = model
    if result.rounds:
        _record_round(
            db_path, digest, result.rounds[-1], spent, result.stop_reason
        )
    remaining = [i for i in range(len(points)) if i not in tested_idx]
    if remaining and model is not None:
        preds = model.predict(X_all[np.array(remaining)])
        result.predicted = {points[i]: int(p) for i, p in zip(remaining, preds)}

    if metrics is not None:
        metrics.gauge("steer.rounds").set(len(result.rounds))
        metrics.gauge("steer.tested_points").set(len(result.tested))
        metrics.gauge("steer.predicted_points").set(len(result.predicted))
        metrics.gauge("steer.tests_run").set(result.tests_run)
        metrics.gauge("steer.tests_saved").set(result.tests_saved)
        metrics.gauge("steer.final_accuracy").set(result.final_accuracy)
        metrics.gauge("steer.test_reduction").set(result.test_reduction)
    return result


def _record_round(
    db_path, digest: str | None, rnd: SteeringRound, spent: int, stop_reason: str
) -> None:
    """Persist one round into ``steering_rounds`` (no-op without a DB).

    Opens a short-lived connection: the inner campaign closes its store
    after every batch, so the driver holds no connection between rounds.
    ``INSERT OR REPLACE`` keeps resumed replays idempotent.
    """
    if db_path is None or digest is None:
        return
    from ..store.db import CampaignDB

    with CampaignDB(db_path) as db:
        cid = db.campaign_id(digest)
        if cid is None:  # pragma: no cover - campaign row always exists here
            return
        db.record_steering_round(
            cid,
            rnd.round_no,
            point_indices=list(rnd.point_indices),
            tests_planned=rnd.tests_planned,
            tests_run=rnd.tests_run,
            budget_used=spent,
            accuracy=rnd.accuracy,
            mean_uncertainty=rnd.mean_uncertainty,
            stop_reason=stop_reason,
        )
