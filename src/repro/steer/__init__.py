"""Adaptive campaign steering (tentpole of the statistical test tier).

Three cooperating pieces, each independently usable:

* :mod:`repro.steer.stopping` — :class:`SequentialStopper`, the Wilson
  interval early exit that truncates a point's test stream once its
  outcome histogram has converged.  Plugs into any
  :class:`~repro.injection.campaign.Campaign` via ``stopper=``.
* :mod:`repro.steer.sampler` — uncertainty scoring and deterministic
  batch selection over the unexplored point space.
* :mod:`repro.steer.driver` — :func:`adaptive_campaign`, the
  inject → verify → retrain → steer loop combining both with the
  existing random-forest learner, store, and parallel engine.

Everything here is deterministic: trajectories are pure functions of
``(app, points, config)`` and bit-identical across serial, ``--jobs N``,
and killed-and-resumed executions.
"""

from .driver import SteeringResult, SteeringRound, adaptive_campaign
from .sampler import SAMPLER_MODES, select_batch, uncertainty_scores
from .stopping import (
    DEFAULT_Z,
    SequentialStopper,
    tests_to_close,
    wilson_interval,
    wilson_width,
)

__all__ = [
    "DEFAULT_Z",
    "SAMPLER_MODES",
    "SequentialStopper",
    "SteeringResult",
    "SteeringRound",
    "adaptive_campaign",
    "select_batch",
    "tests_to_close",
    "uncertainty_scores",
    "wilson_interval",
    "wilson_width",
]
