"""Sequential stopping for adaptive campaigns: Wilson-interval early exit.

A fixed ``tests_per_point`` spends the same budget on a point whose
outcome histogram is obvious after a handful of tests as on a genuinely
noisy one.  The sequential stopper ends a point's test stream as soon as
the Wilson score interval over its error rate closes below a configured
width: degenerate points (all-SUCCESS allreduce padding, always-fatal
root corruption) resolve in ~``z²(1-w)/w`` tests, while mixed-response
points keep running up to the full per-point budget.

Determinism contract
--------------------
The stop decision is a **pure function of the ordered test-result
prefix** — no wall clock, no RNG, no cross-point state.  Tests at a
point always execute in test-index order ``0, 1, 2, …``, so a serial
loop, a ``--jobs N`` worker (which owns the whole point — see
:mod:`repro.exec.parallel`), and a killed-and-resumed run all truncate
the stream at exactly the same index.  That is what keeps adaptive
campaigns bit-identical across schedulings, the same guarantee plain
campaigns get from the ``SeedSequence(seed, (point, test))`` contract.

Only *application responses* count toward the interval: harness-level
``TOOL_ERROR`` verdicts say nothing about the application's sensitivity
and are excluded from ``n`` and ``k`` — mirroring how
``PointResult.error_rate`` excludes them from both sides of the rate.

Closed forms used by the unit tests
-----------------------------------
For ``k = 0`` (or symmetrically ``k = n``) the Wilson interval is
``[0, z²/(n+z²)]``, so a degenerate histogram closes below width ``w``
exactly when ``n ≥ z²(1-w)/w`` — see :func:`tests_to_close`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..injection.runner import TestResult

#: Two-sided 95% normal quantile — the conventional Wilson z.
DEFAULT_Z = 1.96


def wilson_interval(k: int, n: int, z: float = DEFAULT_Z) -> tuple[float, float]:
    """The Wilson score interval for ``k`` successes in ``n`` trials.

    Unlike the normal-approximation interval, Wilson stays inside
    ``[0, 1]`` and keeps a sensible (non-zero) width at ``k = 0`` and
    ``k = n`` — exactly the degenerate histograms a fault-injection
    point usually produces.  ``n = 0`` returns the vacuous ``(0, 1)``.
    """
    if z <= 0:
        raise ValueError(f"z must be > 0, got {z}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, n={n}], got {k}")
    if n == 0:
        return (0.0, 1.0)
    p = k / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4 * n * n))
    return (max(0.0, center - half), min(1.0, center + half))


def wilson_width(k: int, n: int, z: float = DEFAULT_Z) -> float:
    """Full width (``hi - lo``) of the Wilson interval."""
    lo, hi = wilson_interval(k, n, z)
    return hi - lo


def tests_to_close(ci_width: float, z: float = DEFAULT_Z) -> int:
    """Smallest ``n`` at which a *degenerate* histogram (``k = 0`` or
    ``k = n``) closes below ``ci_width`` — the best case, and therefore
    the floor on what any point can cost under the stopper.

    Closed form: the ``k = 0`` interval is ``[0, z²/(n+z²)]``, so
    ``width ≤ w  ⇔  n ≥ z²(1-w)/w``.
    """
    if not 0.0 < ci_width <= 1.0:
        raise ValueError(f"ci_width must be in (0, 1], got {ci_width}")
    if z <= 0:
        raise ValueError(f"z must be > 0, got {z}")
    return max(1, math.ceil(z * z * (1.0 - ci_width) / ci_width))


@dataclass(frozen=True)
class SequentialStopper:
    """Per-point early-stopping policy over the outcome histogram.

    Attributes
    ----------
    ci_width:
        Stop once the Wilson interval over the point's error rate is no
        wider than this (full width, not half-width).
    min_tests:
        Never stop before this many application responses — guards
        against closing on a 2-test "histogram".
    z:
        Normal quantile of the interval (default: two-sided 95%).

    The instance is frozen (and therefore hashable/picklable): workers
    receive it inside the pickled campaign payload.
    """

    ci_width: float
    min_tests: int = 6
    z: float = DEFAULT_Z

    def __post_init__(self) -> None:
        if not 0.0 < self.ci_width <= 1.0:
            raise ValueError(f"ci_width must be in (0, 1], got {self.ci_width}")
        if self.min_tests < 1:
            raise ValueError(f"min_tests must be >= 1, got {self.min_tests}")
        if self.z <= 0:
            raise ValueError(f"z must be > 0, got {self.z}")

    def should_stop(self, tests: Sequence[TestResult]) -> bool:
        """Decide on the ordered prefix of a point's tests so far.

        Counts application responses only (``TOOL_ERROR`` excluded from
        both ``n`` and ``k``), matching ``PointResult.error_rate``.
        """
        n = k = 0
        for t in tests:
            if not t.outcome.is_application_response:
                continue
            n += 1
            if t.outcome.is_error:
                k += 1
        if n < self.min_tests:
            return False
        return wilson_width(k, n, self.z) <= self.ci_width

    def fingerprint(self) -> dict:
        """JSON-serialisable identity, for the campaign digest."""
        return {"ci_width": self.ci_width, "min_tests": self.min_tests, "z": self.z}
