"""Uncertainty sampling over the unexplored injection-point space.

After each steering round the freshly retrained forest scores every
point not yet injected; the next batch is the top of that ranking.  Two
standard acquisition functions are provided:

* ``"margin"`` — ``1 - max_c P(c)``: the forest's vote disagreement.
  Zero when every tree agrees, maximal at a uniform vote split.
* ``"entropy"`` — Shannon entropy of the mean leaf distribution, in
  nats.  Distinguishes "split between two classes" from "split between
  all classes", which the margin score cannot.

Both are computed from :meth:`predict_proba`, so any model with that
method plugs in.

Determinism: selection is a pure sort by ``(-score, candidate_index)``
— equal scores break toward the smaller global index — so the same
model and candidate set always produce the same batch, independent of
dict ordering or float summation order elsewhere.  No-starvation falls
out of selection *without replacement*: every round removes its batch
from the candidate pool, so any point is picked after at most
``ceil(|pool| / batch_size)`` rounds regardless of its score.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Recognised acquisition functions.
SAMPLER_MODES = ("margin", "entropy")


def uncertainty_scores(model, X: np.ndarray, mode: str = "margin") -> np.ndarray:
    """Per-row uncertainty of ``model`` over feature matrix ``X``.

    ``model`` needs only ``predict_proba`` (rows summing to 1); the
    score vector aligns with the rows of ``X``.
    """
    if mode not in SAMPLER_MODES:
        raise ValueError(
            f"unknown sampler mode {mode!r}; choices: {', '.join(SAMPLER_MODES)}"
        )
    proba = np.asarray(model.predict_proba(X), dtype=np.float64)
    if proba.ndim != 2:
        raise ValueError(f"predict_proba must return 2-D, got shape {proba.shape}")
    if proba.shape[0] == 0:
        return np.zeros(0)
    if mode == "margin":
        return 1.0 - proba.max(axis=1)
    # entropy: 0 * log(0) := 0, without touching global error state.
    logp = np.where(proba > 0.0, np.log(np.where(proba > 0.0, proba, 1.0)), 0.0)
    return -(proba * logp).sum(axis=1)


def select_batch(
    candidates: Sequence[int], scores: Sequence[float], batch_size: int
) -> list[int]:
    """Pick the ``batch_size`` most uncertain candidates, deterministically.

    ``scores[i]`` belongs to ``candidates[i]``.  Ties break toward the
    smaller candidate index, so the result is a pure function of its
    arguments.  Returns fewer than ``batch_size`` only when the pool is
    smaller; duplicated candidates are rejected (they would let one
    point absorb several batch slots).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if len(candidates) != len(scores):
        raise ValueError(
            f"{len(candidates)} candidates but {len(scores)} scores"
        )
    if len(set(candidates)) != len(candidates):
        raise ValueError("candidates must be unique")
    ranked = sorted(
        zip(candidates, scores), key=lambda cs: (-float(cs[1]), int(cs[0]))
    )
    return [int(c) for c, _ in ranked[:batch_size]]
