"""The FastFIT facade — profiling, pruning, injection, learning.

Mirrors the tool architecture of the paper's Fig. 5: a profiling phase
(communication profile, call graphs, call stacks), a pruning stage
(semantic + application context), and the coupled injection/learning
loop, with a Table III-style summary at the end.

Typical use::

    from repro import FastFIT
    ff = FastFIT.for_app("lammps", "T", tests_per_point=30)
    report = ff.run(threshold=0.65)
    print(report.describe())
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Sequence

from .analysis.reports import render_table
from .apps.base import Application
from .apps.registry import make_app
from .injection.campaign import Campaign, CampaignResult
from .injection.space import InjectionPoint, enumerate_points
from .obs.metrics import MetricsRegistry
from .profiling.profiler import ApplicationProfile, profile_application
from .pruning.context import ContextSelection, select_context
from .pruning.mldriven import Labeler, MLDrivenResult, ml_driven_campaign
from .pruning.semantic import SemanticSelection, select_semantic

logger = logging.getLogger("repro.fastfit")


@dataclass
class PruningReport:
    """Exploration-space reduction from the two static techniques."""

    total_points: int
    semantic: SemanticSelection
    context: ContextSelection

    @property
    def representative_points(self) -> list[InjectionPoint]:
        return self.context.selected_points_list

    @property
    def semantic_reduction(self) -> float:
        """The "MPI" column of Table III."""
        return self.semantic.reduction

    @property
    def context_reduction(self) -> float:
        """The "App" column: further reduction over the semantic
        survivors."""
        return self.context.reduction

    @property
    def combined_reduction(self) -> float:
        if self.total_points == 0:
            return 0.0
        return 1.0 - len(self.representative_points) / self.total_points


@dataclass
class FastFITReport:
    """End-to-end result of one FastFIT study."""

    app_name: str
    pruning: PruningReport
    ml: MLDrivenResult | None = None
    campaign: CampaignResult | None = None

    @property
    def ml_reduction(self) -> float | None:
        """The "ML" column of Table III (``None`` = not applied)."""
        return self.ml.test_reduction if self.ml is not None else None

    @property
    def total_reduction(self) -> float:
        """The "Total" column: fraction of the unpruned point space whose
        tests never ran."""
        total = self.pruning.total_points
        if total == 0:
            return 0.0
        if self.ml is not None:
            tested = len(self.ml.tested)
        else:
            tested = len(self.pruning.representative_points)
        return 1.0 - tested / total

    def table3_row(self) -> dict[str, float | None]:
        return {
            "MPI": self.pruning.semantic_reduction,
            "App": self.pruning.context_reduction,
            "ML": self.ml_reduction,
            "Total": self.total_reduction,
        }

    def describe(self) -> str:
        row = self.table3_row()
        cells = [
            self.app_name,
            f"{row['MPI'] * 100:.2f}%",
            f"{row['App'] * 100:.2f}%",
            "NA" if row["ML"] is None else f"{row['ML'] * 100:.2f}%",
            f"{row['Total'] * 100:.2f}%",
        ]
        return render_table(["App", "MPI", "App-ctx", "ML", "Total"], [cells])


class FastFIT:
    """Fast Fault Injection and Sensitivity Analysis Tool."""

    def __init__(
        self,
        app: Application,
        seed: int = 0,
        tests_per_point: int = 40,
        param_policy: str = "buffer",
        metrics: MetricsRegistry | None = None,
        jobs: int = 1,
        checkpoint_dir=None,
        db_path=None,
        resume: bool = False,
        unit_timeout: float | None = None,
        max_retries: int = 2,
        quarantine: bool = True,
        tracer=None,
        progress_sinks=None,
        progress_every: int = 1,
        static_prune: bool = False,
        snapshot: bool = True,
        fault_model: str = "bitflip",
        scenario=None,
    ):
        self.app = app
        self.seed = seed
        self.tests_per_point = tests_per_point
        self.param_policy = param_policy
        #: Every phase records into this registry (``phase.*`` timers,
        #: ``prune.*``/``campaign.*``/``ml.*`` from the stages, plus the
        #: supervision counters ``exec.retries``/``exec.worker_deaths``/
        #: ``exec.quarantined``).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Worker processes for campaign execution (1 = classic serial
        #: loop); campaigns shard across workers with bit-identical
        #: results (see :mod:`repro.exec`).
        self.jobs = jobs
        self.checkpoint_dir = checkpoint_dir
        #: SQLite campaign database (``--db``): persists completed units,
        #: queryable per-test rows, and progress telemetry.
        self.db_path = db_path
        self.resume = resume
        #: :class:`~repro.obs.progress.ProgressSink` consumers fed live
        #: campaign telemetry.
        self.progress_sinks = list(progress_sinks or [])
        self.progress_every = progress_every
        #: Supervision policy for parallel campaigns (see
        #: :class:`~repro.exec.supervisor.SupervisorConfig`).
        self.unit_timeout = unit_timeout
        self.max_retries = max_retries
        self.quarantine = quarantine
        self.tracer = tracer
        #: Skip tests whose outcome the static pre-classifier proves
        #: (serial in-memory campaigns only; see :mod:`repro.analyze`).
        self.static_prune = static_prune
        #: Snapshot-and-fork serving (:mod:`repro.snapshot`): amortise
        #: the fault-free prefix across every test at an injection point.
        self.snapshot = snapshot
        #: Fault model applied to every campaign test (see
        #: :data:`repro.injection.models.MODELS`).
        self.fault_model = fault_model
        #: Optional :class:`~repro.injection.Scenario` timeline; a
        #: scenario campaign runs under the scenario's synthetic anchor
        #: point instead of profiled/pruned injection points.
        self.scenario = scenario
        self._profile: ApplicationProfile | None = None
        self._pruning: PruningReport | None = None
        self._preclassifier = None

    @classmethod
    def for_app(cls, name: str, problem_class: str = "T", **kwargs) -> "FastFIT":
        return cls(make_app(name, problem_class), **kwargs)

    # -- phases -----------------------------------------------------------

    def profile(self) -> ApplicationProfile:
        """Profiling phase (one-time cost, cached)."""
        if self._profile is None:
            logger.info("profiling %s (%d ranks)", self.app.name, self.app.nranks)
            with self.metrics.time("phase.profile_s"):
                self._profile = profile_application(self.app)
            logger.info("profile done: %d golden steps", self._profile.golden_steps)
        return self._profile

    def prune(self) -> PruningReport:
        """Semantic + application-context pruning (cached)."""
        if self._pruning is None:
            profile = self.profile()
            with self.metrics.time("phase.prune_s"):
                semantic = select_semantic(profile, metrics=self.metrics)
                context = select_context(
                    profile, semantic.selected_points_list, metrics=self.metrics
                )
                self._pruning = PruningReport(
                    total_points=len(enumerate_points(profile)),
                    semantic=semantic,
                    context=context,
                )
            logger.info(
                "pruning: %d points -> %d semantic -> %d representatives",
                self._pruning.total_points,
                semantic.selected_points,
                context.selected_points,
            )
        return self._pruning

    def preclassifier(self):
        """The static fault-outcome pre-classifier (cached).

        Extracts the collective skeleton and verifies it with the
        matching checker first: the pre-classifier's truncate/volume
        proofs are only sound over a checker-clean skeleton, so a dirty
        one raises :class:`repro.analyze.StaticPruneError` instead of
        silently mispredicting."""
        if self._preclassifier is None:
            from .analyze import PreClassifier, StaticPruneError, check_skeleton, extract_skeleton

            with self.metrics.time("phase.analyze_s"):
                skeleton = extract_skeleton(self.app)
                report = check_skeleton(skeleton)
                if not report.ok:
                    raise StaticPruneError(
                        f"cannot statically prune {self.app.name}: "
                        f"matching checker found "
                        f"{len(report.errors)} error(s); run 'fastfit "
                        f"analyze' for the full report"
                    )
                self._preclassifier = PreClassifier(
                    skeleton, seed=self.seed, param_policy=self.param_policy
                )
        return self._preclassifier

    def campaign(
        self, points: Sequence[InjectionPoint] | None = None, tests_per_point: int | None = None
    ) -> CampaignResult:
        """A traditional campaign over ``points`` (default: the pruned
        representatives)."""
        if points is None:
            if self.scenario is not None:
                points = [self.scenario.anchor_point()]
            else:
                points = self.prune().representative_points
        runner = Campaign(
            self.app,
            self.profile(),
            tests_per_point=tests_per_point or self.tests_per_point,
            param_policy=self.param_policy,
            seed=self.seed,
            metrics=self.metrics,
            jobs=self.jobs,
            checkpoint_dir=self.checkpoint_dir,
            db_path=self.db_path,
            resume=self.resume,
            unit_timeout=self.unit_timeout,
            max_retries=self.max_retries,
            quarantine=self.quarantine,
            tracer=self.tracer,
            progress_sinks=self.progress_sinks,
            progress_every=self.progress_every,
            preclassifier=self.preclassifier() if self.static_prune else None,
            snapshot=self.snapshot,
            fault_model=self.fault_model,
            scenario=self.scenario,
        )
        logger.info(
            "campaign: %d points x %d tests (%d jobs)",
            len(list(points)),
            runner.tests_per_point,
            self.jobs,
        )
        with self.metrics.time("phase.campaign_s"):
            return runner.run(points)

    def learn(
        self,
        threshold: float = 0.65,
        labeler: Labeler | None = None,
        label_names: tuple[str, ...] | None = None,
        batch_size: int | None = None,
    ) -> MLDrivenResult:
        """ML-driven injection over the pruned representatives."""
        logger.info("ML-driven campaign: threshold %.2f", threshold)
        with self.metrics.time("phase.learn_s"):
            return ml_driven_campaign(
                self.app,
                self.profile(),
                self.prune().representative_points,
                labeler=labeler,
                label_names=label_names,
                threshold=threshold,
                tests_per_point=self.tests_per_point,
                batch_size=batch_size,
                param_policy=self.param_policy,
                seed=self.seed,
                metrics=self.metrics,
                jobs=self.jobs,
                db_path=self.db_path,
                resume=self.resume,
                snapshot=self.snapshot,
            )

    def steer(
        self,
        accuracy_target: float = 0.65,
        ci_width: float = 0.25,
        budget: int | None = None,
        labeler: Labeler | None = None,
        label_names: tuple[str, ...] | None = None,
        batch_size: int | None = None,
        min_tests: int = 6,
        points: Sequence[InjectionPoint] | None = None,
    ):
        """Adaptive steering over the pruned representatives: uncertainty
        sampling plus per-point sequential stopping (see
        :func:`repro.steer.adaptive_campaign`)."""
        from .steer import adaptive_campaign

        if points is None:
            points = self.prune().representative_points
        logger.info(
            "adaptive campaign: target %.2f, ci width %.2f, budget %s",
            accuracy_target, ci_width, budget,
        )
        with self.metrics.time("phase.steer_s"):
            return adaptive_campaign(
                self.app,
                self.profile(),
                points,
                labeler=labeler,
                label_names=label_names,
                accuracy_target=accuracy_target,
                ci_width=ci_width,
                budget=budget,
                tests_per_point=self.tests_per_point,
                batch_size=batch_size,
                param_policy=self.param_policy,
                seed=self.seed,
                min_tests=min_tests,
                metrics=self.metrics,
                jobs=self.jobs,
                db_path=self.db_path,
                resume=self.resume,
                snapshot=self.snapshot,
                fault_model=self.fault_model,
                progress_sinks=self.progress_sinks,
                progress_every=self.progress_every,
            )

    # -- one-shot studies ----------------------------------------------------

    def run(self, threshold: float | None = 0.65, **learn_kwargs) -> FastFITReport:
        """Full study: profile → prune → (ML-driven or plain) campaign.

        ``threshold=None`` disables the ML stage (the paper's NPB rows).
        """
        pruning = self.prune()
        report = FastFITReport(self.app.name, pruning)
        if threshold is None:
            report.campaign = self.campaign()
        else:
            report.ml = self.learn(threshold=threshold, **learn_kwargs)
        return report
