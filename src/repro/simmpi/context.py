"""Per-rank MPI context — the API applications program against.

Application code is written as generator functions receiving a
:class:`Context` and calling collectives with ``yield from``::

    def main(ctx):
        buf = ctx.alloc(100, ctx.DOUBLE, "field")
        out = ctx.alloc(100, ctx.DOUBLE, "sums")
        buf.view[:] = ctx.rank
        yield from ctx.Allreduce(buf.addr, out.addr, 100, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return float(out.view.sum())

Every collective entry builds a :class:`~repro.simmpi.calls.CollectiveCall`
record, hands it to the registered instruments (the profiler records it;
the fault injector may flip a bit in a parameter or in buffer memory),
validates the — possibly corrupted — parameters, and only then expands
the operation into point-to-point traffic.
"""

from __future__ import annotations

import os
import sys
from typing import TYPE_CHECKING, Any, Generator, Sequence

from . import collectives as coll
from .calls import CollectiveCall, Instrument, P2PCall
from .collectives.env import CollEnv
from .comm import Communicator
from .errors import AppError, MPIError
from .fiber import Progress, Recv, Send
from .memory import ArrayRef, Memory
from .request import Request
from .validation import (
    check_addr,
    check_count,
    check_counts_array,
    check_root,
    resolve_comm,
    resolve_datatype,
    resolve_op,
)

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import SimMPI

_PKG_DIR = os.path.dirname(os.path.abspath(__file__))
_FIBER_FILE = os.path.join(_PKG_DIR, "fiber.py")
_SCHEDULER_FILE = os.path.join(_PKG_DIR, "scheduler.py")

#: Application phases recognised by the ``Phase`` ML feature (§ III-C).
PHASES = ("init", "input", "compute", "end")

#: Reserved tag-step space for communicator construction traffic.
_COMM_CTRL_STEP = 255

#: Point-to-point traffic is matched in a context-id space disjoint from
#: collective traffic, as real MPI separates the two.
P2P_CONTEXT_OFFSET = 1 << 30

#: Shared weight-1 tick — scheduler treats syscalls as immutable.
_PROGRESS_ONE = Progress(1)


class Context:
    """One rank's view of the simulated MPI world."""

    def __init__(self, runtime: "SimMPI", rank: int, instruments: Sequence[Instrument] = ()):
        self.runtime = runtime
        self.rank = rank
        self.size = runtime.nranks
        self._tracer = getattr(runtime, "tracer", None)
        self.memory = Memory(
            rank,
            runtime.arena_size,
            tracer=self._tracer,
            alloc_cap=getattr(runtime, "alloc_cap", None),
            sanitizer=getattr(runtime, "sanitizer", None),
        )
        self.instruments = list(instruments)
        #: Nonblocking requests handed out by this rank; the sanitizer's
        #: teardown sweep flags any still incomplete (request leaks).
        self._live_requests: list[Request] = []
        self.phase = "init"
        self._site_counters: dict[tuple[str, str], int] = {}
        self._coll_seq = 0
        self._comm_seq: dict[int, int] = {}
        self._p2p_site_counters: dict[tuple[str, str], int] = {}
        self._p2p_seq = 0
        self._wants_p2p_calls = any(ins.wants_p2p_calls for ins in self.instruments)

        # Named handles, mirroring the MPI predefined objects.
        for name, handle in runtime.type_handles.items():
            setattr(self, name.removeprefix("MPI_"), handle)
        for name, handle in runtime.op_handles.items():
            setattr(self, name.removeprefix("MPI_"), handle)
        self.WORLD = runtime.world_handle

    # -- application-facing helpers -----------------------------------

    def alloc(self, count: int, datatype_handle: int, label: str = "") -> ArrayRef:
        """Allocate a typed buffer of ``count`` elements in rank memory."""
        dtype = self.runtime.type_space.resolve(int(datatype_handle), rank=self.rank)
        return self.memory.alloc_array(count, dtype, label=label)

    def set_phase(self, phase: str) -> None:
        """Mark the current application phase (``Phase`` ML feature)."""
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}; expected one of {PHASES}")
        self.phase = phase

    def progress(self, weight: int = 1) -> Generator:
        """Report ``weight`` units of compute against the step budget."""
        # Unit ticks dominate compute loops; reuse one shared syscall
        # instead of allocating a fresh Progress per tick.
        yield _PROGRESS_ONE if weight == 1 else Progress(weight)

    def app_error(self, message: str) -> None:
        """Abort the job from application error-handling code
        (``APP_DETECTED``)."""
        raise AppError(message, rank=self.rank)

    def comm_rank(self, comm_handle: int) -> int:
        """This rank's comm-local rank."""
        return resolve_comm(self.runtime, comm_handle, rank=self.rank).rank_of(self.rank)

    def comm_size(self, comm_handle: int) -> int:
        return resolve_comm(self.runtime, comm_handle, rank=self.rank).size

    # -- call-record plumbing ------------------------------------------

    def _capture_stack(self) -> tuple[tuple[str, ...], str]:
        """Capture the application call stack (our ``backtrace()``).

        Walks live interpreter frames from the collective entry up to the
        fiber trampoline, keeping only application frames.  Returns the
        canonical stack (outermost first) and the call-site id.
        """
        raw: list[tuple[str, str, int]] = []
        frame = sys._getframe(1)
        while frame is not None:
            code = frame.f_code
            # The trampoline is either Fiber.step or (on the inlined hot
            # path) the scheduler's run loop — both end the app stack.
            if (code.co_filename == _FIBER_FILE and code.co_name == "step") or (
                code.co_filename == _SCHEDULER_FILE and code.co_name == "run"
            ):
                break
            raw.append((code.co_filename, code.co_name, frame.f_lineno))
            frame = frame.f_back
        app_frames = [
            (fn, name, lineno)
            for fn, name, lineno in raw
            if not fn.startswith(_PKG_DIR)
        ]
        if not app_frames:
            return ("<unknown>",), "<unknown>"
        site_fn, _, site_lineno = app_frames[0]
        site = f"{os.path.basename(site_fn)}:{site_lineno}"
        stack = tuple(
            f"{name}@{os.path.basename(fn)}:{lineno}"
            for fn, name, lineno in reversed(app_frames)
        )
        return stack, site

    def _enter(self, name: str, args: dict[str, Any]) -> CollectiveCall:
        stack, site = self._capture_stack()
        key = (name, site)
        invocation = self._site_counters.get(key, 0)
        self._site_counters[key] = invocation + 1
        call = CollectiveCall(
            rank=self.rank,
            name=name,
            site=site,
            stack=stack,
            invocation=invocation,
            seq=self._coll_seq,
            phase=self.phase,
            args=args,
        )
        self._coll_seq += 1
        if self._tracer is not None:
            self._tracer.emit(
                "coll_enter", self.rank,
                name=name, site=site, invocation=invocation,
                seq=call.seq, phase=self.phase,
            )
        for ins in self.instruments:
            ins.on_collective(self, call)
        return call

    def _complete(self, call: CollectiveCall) -> None:
        if self._tracer is not None:
            self._tracer.emit(
                "coll_exit", self.rank,
                name=call.name, site=call.site, invocation=call.invocation,
                seq=call.seq,
            )
        for ins in self.instruments:
            ins.on_complete(self, call)

    def _env(self, comm: Communicator) -> CollEnv:
        seq = self._comm_seq.get(comm.context_id, 0)
        self._comm_seq[comm.context_id] = seq + 1
        return CollEnv(comm, self.rank, seq, self.memory)

    # -- collectives ---------------------------------------------------

    def Bcast(self, buffer: int, count: int, datatype: int, root: int, comm: int) -> Generator:
        """MPI_Bcast."""
        call = self._enter(
            "Bcast",
            {"buffer": buffer, "count": count, "datatype": datatype, "root": root, "comm": comm},
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        count = check_count(a["count"], rank=self.rank)
        root = check_root(a["root"], comm_obj, rank=self.rank)
        addr = check_addr(a["buffer"], rank=self.rank)
        yield from coll.bcast(
            self._env(comm_obj), addr, count, dtype, root,
            algorithm=self.runtime.algorithms["bcast"],
        )
        self._complete(call)

    def Reduce(
        self,
        sendbuf: int,
        recvbuf: int,
        count: int,
        datatype: int,
        op: int,
        root: int,
        comm: int,
    ) -> Generator:
        """MPI_Reduce."""
        call = self._enter(
            "Reduce",
            {
                "sendbuf": sendbuf,
                "recvbuf": recvbuf,
                "count": count,
                "datatype": datatype,
                "op": op,
                "root": root,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        op_obj = resolve_op(self.runtime, a["op"], rank=self.rank)
        count = check_count(a["count"], rank=self.rank)
        root = check_root(a["root"], comm_obj, rank=self.rank)
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.reduce(
            self._env(comm_obj), sendaddr, recvaddr, count, dtype, op_obj, root
        )
        self._complete(call)

    def Allreduce(
        self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int, comm: int
    ) -> Generator:
        """MPI_Allreduce."""
        call = self._enter(
            "Allreduce",
            {
                "sendbuf": sendbuf,
                "recvbuf": recvbuf,
                "count": count,
                "datatype": datatype,
                "op": op,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        op_obj = resolve_op(self.runtime, a["op"], rank=self.rank)
        count = check_count(a["count"], rank=self.rank)
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.allreduce(
            self._env(comm_obj), sendaddr, recvaddr, count, dtype, op_obj,
            algorithm=self.runtime.algorithms["allreduce"],
        )
        self._complete(call)

    def Scatter(
        self,
        sendbuf: int,
        sendcount: int,
        recvbuf: int,
        recvcount: int,
        datatype: int,
        root: int,
        comm: int,
    ) -> Generator:
        """MPI_Scatter (single datatype for both sides)."""
        call = self._enter(
            "Scatter",
            {
                "sendbuf": sendbuf,
                "sendcount": sendcount,
                "recvbuf": recvbuf,
                "recvcount": recvcount,
                "datatype": datatype,
                "root": root,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        sendcount = check_count(a["sendcount"], rank=self.rank, what="sendcount")
        recvcount = check_count(a["recvcount"], rank=self.rank, what="recvcount")
        root = check_root(a["root"], comm_obj, rank=self.rank)
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.scatter(
            self._env(comm_obj), sendaddr, sendcount, recvaddr, recvcount, dtype, root
        )
        self._complete(call)

    def Gather(
        self,
        sendbuf: int,
        sendcount: int,
        recvbuf: int,
        recvcount: int,
        datatype: int,
        root: int,
        comm: int,
    ) -> Generator:
        """MPI_Gather (single datatype for both sides)."""
        call = self._enter(
            "Gather",
            {
                "sendbuf": sendbuf,
                "sendcount": sendcount,
                "recvbuf": recvbuf,
                "recvcount": recvcount,
                "datatype": datatype,
                "root": root,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        sendcount = check_count(a["sendcount"], rank=self.rank, what="sendcount")
        recvcount = check_count(a["recvcount"], rank=self.rank, what="recvcount")
        root = check_root(a["root"], comm_obj, rank=self.rank)
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.gather(
            self._env(comm_obj), sendaddr, sendcount, recvaddr, recvcount, dtype, root
        )
        self._complete(call)

    def Allgather(
        self, sendbuf: int, sendcount: int, recvbuf: int, recvcount: int, datatype: int, comm: int
    ) -> Generator:
        """MPI_Allgather."""
        call = self._enter(
            "Allgather",
            {
                "sendbuf": sendbuf,
                "sendcount": sendcount,
                "recvbuf": recvbuf,
                "recvcount": recvcount,
                "datatype": datatype,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        sendcount = check_count(a["sendcount"], rank=self.rank, what="sendcount")
        recvcount = check_count(a["recvcount"], rank=self.rank, what="recvcount")
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.allgather(
            self._env(comm_obj), sendaddr, sendcount, recvaddr, recvcount, dtype
        )
        self._complete(call)

    def Alltoall(
        self, sendbuf: int, sendcount: int, recvbuf: int, recvcount: int, datatype: int, comm: int
    ) -> Generator:
        """MPI_Alltoall."""
        call = self._enter(
            "Alltoall",
            {
                "sendbuf": sendbuf,
                "sendcount": sendcount,
                "recvbuf": recvbuf,
                "recvcount": recvcount,
                "datatype": datatype,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        sendcount = check_count(a["sendcount"], rank=self.rank, what="sendcount")
        recvcount = check_count(a["recvcount"], rank=self.rank, what="recvcount")
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.alltoall(
            self._env(comm_obj), sendaddr, sendcount, recvaddr, recvcount, dtype
        )
        self._complete(call)

    def Alltoallv(
        self,
        sendbuf: int,
        sendcounts: Sequence[int],
        sdispls: Sequence[int],
        recvbuf: int,
        recvcounts: Sequence[int],
        rdispls: Sequence[int],
        datatype: int,
        comm: int,
    ) -> Generator:
        """MPI_Alltoallv (counts/displacements in elements)."""
        call = self._enter(
            "Alltoallv",
            {
                "sendbuf": sendbuf,
                "sendcounts": sendcounts,
                "sdispls": sdispls,
                "recvbuf": recvbuf,
                "recvcounts": recvcounts,
                "rdispls": rdispls,
                "datatype": datatype,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        sendcounts = check_counts_array(a["sendcounts"], rank=self.rank, what="sendcounts")
        recvcounts = check_counts_array(a["recvcounts"], rank=self.rank, what="recvcounts")
        sdispls = [int(x) for x in a["sdispls"]]
        rdispls = [int(x) for x in a["rdispls"]]
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.alltoallv(
            self._env(comm_obj),
            sendaddr,
            sendcounts,
            sdispls,
            recvaddr,
            recvcounts,
            rdispls,
            dtype,
        )
        self._complete(call)

    def Barrier(self, comm: int) -> Generator:
        """MPI_Barrier."""
        call = self._enter("Barrier", {"comm": comm})
        comm_obj = resolve_comm(self.runtime, call.args["comm"], rank=self.rank)
        yield from coll.barrier(self._env(comm_obj))
        self._complete(call)

    def _prefix_reduction(
        self, name: str, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int, comm: int
    ) -> Generator:
        call = self._enter(
            name,
            {
                "sendbuf": sendbuf,
                "recvbuf": recvbuf,
                "count": count,
                "datatype": datatype,
                "op": op,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        op_obj = resolve_op(self.runtime, a["op"], rank=self.rank)
        count = check_count(a["count"], rank=self.rank)
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        driver = coll.scan if name == "Scan" else coll.exscan
        yield from driver(self._env(comm_obj), sendaddr, recvaddr, count, dtype, op_obj)
        self._complete(call)

    def Scan(
        self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int, comm: int
    ) -> Generator:
        """MPI_Scan (inclusive prefix reduction)."""
        yield from self._prefix_reduction("Scan", sendbuf, recvbuf, count, datatype, op, comm)

    def Exscan(
        self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int, comm: int
    ) -> Generator:
        """MPI_Exscan (exclusive prefix reduction; rank 0's recvbuf is
        undefined, as in MPI)."""
        yield from self._prefix_reduction("Exscan", sendbuf, recvbuf, count, datatype, op, comm)

    def Reduce_scatter(
        self, sendbuf: int, recvbuf: int, recvcount: int, datatype: int, op: int, comm: int
    ) -> Generator:
        """MPI_Reduce_scatter_block (equal ``recvcount`` per rank)."""
        call = self._enter(
            "Reduce_scatter",
            {
                "sendbuf": sendbuf,
                "recvbuf": recvbuf,
                "recvcount": recvcount,
                "datatype": datatype,
                "op": op,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        op_obj = resolve_op(self.runtime, a["op"], rank=self.rank)
        recvcount = check_count(a["recvcount"], rank=self.rank, what="recvcount")
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.reduce_scatter_block(
            self._env(comm_obj), sendaddr, recvaddr, recvcount, dtype, op_obj
        )
        self._complete(call)

    def Gatherv(
        self,
        sendbuf: int,
        sendcount: int,
        recvbuf: int,
        recvcounts: Sequence[int],
        displs: Sequence[int],
        datatype: int,
        root: int,
        comm: int,
    ) -> Generator:
        """MPI_Gatherv (recvcounts/displs significant only at the root)."""
        call = self._enter(
            "Gatherv",
            {
                "sendbuf": sendbuf,
                "sendcount": sendcount,
                "recvbuf": recvbuf,
                "recvcounts": recvcounts,
                "displs": displs,
                "datatype": datatype,
                "root": root,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        sendcount = check_count(a["sendcount"], rank=self.rank, what="sendcount")
        recvcounts = check_counts_array(a["recvcounts"], rank=self.rank, what="recvcounts")
        displs = [int(x) for x in a["displs"]]
        root = check_root(a["root"], comm_obj, rank=self.rank)
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.gatherv(
            self._env(comm_obj), sendaddr, sendcount, recvaddr, recvcounts, displs, dtype, root
        )
        self._complete(call)

    def Scatterv(
        self,
        sendbuf: int,
        sendcounts: Sequence[int],
        displs: Sequence[int],
        recvbuf: int,
        recvcount: int,
        datatype: int,
        root: int,
        comm: int,
    ) -> Generator:
        """MPI_Scatterv (sendcounts/displs significant only at the root)."""
        call = self._enter(
            "Scatterv",
            {
                "sendbuf": sendbuf,
                "sendcounts": sendcounts,
                "displs": displs,
                "recvbuf": recvbuf,
                "recvcount": recvcount,
                "datatype": datatype,
                "root": root,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        sendcounts = check_counts_array(a["sendcounts"], rank=self.rank, what="sendcounts")
        displs = [int(x) for x in a["displs"]]
        recvcount = check_count(a["recvcount"], rank=self.rank, what="recvcount")
        root = check_root(a["root"], comm_obj, rank=self.rank)
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.scatterv(
            self._env(comm_obj), sendaddr, sendcounts, displs, recvaddr, recvcount, dtype, root
        )
        self._complete(call)

    def Allgatherv(
        self,
        sendbuf: int,
        sendcount: int,
        recvbuf: int,
        recvcounts: Sequence[int],
        displs: Sequence[int],
        datatype: int,
        comm: int,
    ) -> Generator:
        """MPI_Allgatherv."""
        call = self._enter(
            "Allgatherv",
            {
                "sendbuf": sendbuf,
                "sendcount": sendcount,
                "recvbuf": recvbuf,
                "recvcounts": recvcounts,
                "displs": displs,
                "datatype": datatype,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        sendcount = check_count(a["sendcount"], rank=self.rank, what="sendcount")
        recvcounts = check_counts_array(a["recvcounts"], rank=self.rank, what="recvcounts")
        displs = [int(x) for x in a["displs"]]
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.allgatherv(
            self._env(comm_obj), sendaddr, sendcount, recvaddr, recvcounts, displs, dtype
        )
        self._complete(call)

    def Alltoallw(
        self,
        sendbuf: int,
        sendcounts: Sequence[int],
        sdispls: Sequence[int],
        sendtypes: Sequence[int],
        recvbuf: int,
        recvcounts: Sequence[int],
        rdispls: Sequence[int],
        recvtypes: Sequence[int],
        comm: int,
    ) -> Generator:
        """MPI_Alltoallw (per-peer datatypes; displacements in *bytes*)."""
        call = self._enter(
            "Alltoallw",
            {
                "sendbuf": sendbuf,
                "sendcounts": sendcounts,
                "sdispls": sdispls,
                "sendtypes": sendtypes,
                "recvbuf": recvbuf,
                "recvcounts": recvcounts,
                "rdispls": rdispls,
                "recvtypes": recvtypes,
                "comm": comm,
            },
        )
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        sendcounts = check_counts_array(a["sendcounts"], rank=self.rank, what="sendcounts")
        recvcounts = check_counts_array(a["recvcounts"], rank=self.rank, what="recvcounts")
        sdispls = [int(x) for x in a["sdispls"]]
        rdispls = [int(x) for x in a["rdispls"]]
        stypes = [
            resolve_datatype(self.runtime, h, rank=self.rank) for h in a["sendtypes"]
        ]
        rtypes = [
            resolve_datatype(self.runtime, h, rank=self.rank) for h in a["recvtypes"]
        ]
        sendaddr = check_addr(a["sendbuf"], rank=self.rank)
        recvaddr = check_addr(a["recvbuf"], rank=self.rank)
        yield from coll.alltoallw(
            self._env(comm_obj),
            sendaddr,
            sendcounts,
            sdispls,
            stypes,
            recvaddr,
            recvcounts,
            rdispls,
            rtypes,
        )
        self._complete(call)

    # -- point-to-point (profiled as traces, never an injection target:
    # -- the paper's fault model covers collective parameters only) ----

    def _enter_p2p(self, kind: str, args: dict[str, Any]):
        """Build and dispatch a mutable p2p record (extension surface).

        Returns the record, or ``None`` when no instrument opted in —
        the fast path for ordinary profiling/injection runs.
        """
        if not self._wants_p2p_calls:
            return None
        stack, site = self._capture_stack()
        key = (kind, site)
        invocation = self._p2p_site_counters.get(key, 0)
        self._p2p_site_counters[key] = invocation + 1
        call = P2PCall(
            rank=self.rank,
            kind=kind,
            site=site,
            stack=stack,
            invocation=invocation,
            seq=self._p2p_seq,
            phase=self.phase,
            args=args,
        )
        self._p2p_seq += 1
        for ins in self.instruments:
            if ins.wants_p2p_calls:
                ins.on_p2p_call(self, call)
        return call

    def Send(
        self, buf: int, count: int, datatype: int, dest: int, tag: int, comm: int
    ) -> Generator:
        """MPI_Send (buffered-eager: completes locally)."""
        record = self._enter_p2p(
            "Send",
            {"buf": buf, "count": count, "datatype": datatype, "dest": dest, "tag": tag, "comm": comm},
        )
        if record is not None:
            a = record.args
            buf, count, datatype, dest, tag, comm = (
                a["buf"], a["count"], a["datatype"], a["dest"], a["tag"], a["comm"],
            )
        comm_obj = resolve_comm(self.runtime, comm, rank=self.rank)
        dtype = resolve_datatype(self.runtime, datatype, rank=self.rank)
        count = check_count(count, rank=self.rank)
        dest = int(dest)
        if not 0 <= dest < comm_obj.size:
            raise MPIError("MPI_ERR_RANK", f"destination {dest} out of range", rank=self.rank)
        payload = self.memory.read(check_addr(buf, rank=self.rank), count * dtype.size)
        me = comm_obj.rank_of(self.rank)
        for ins in self.instruments:
            ins.on_p2p(self, "send", me, dest, int(tag), len(payload))
        yield Send(comm_obj.context_id + P2P_CONTEXT_OFFSET, me, dest, int(tag), payload)

    def Recv(
        self, buf: int, count: int, datatype: int, source: int, tag: int, comm: int
    ) -> Generator:
        """MPI_Recv (blocking). Returns the received element count."""
        record = self._enter_p2p(
            "Recv",
            {"buf": buf, "count": count, "datatype": datatype, "source": source, "tag": tag, "comm": comm},
        )
        if record is not None:
            a = record.args
            buf, count, datatype, source, tag, comm = (
                a["buf"], a["count"], a["datatype"], a["source"], a["tag"], a["comm"],
            )
        comm_obj = resolve_comm(self.runtime, comm, rank=self.rank)
        dtype = resolve_datatype(self.runtime, datatype, rank=self.rank)
        count = check_count(count, rank=self.rank)
        source = int(source)
        if not 0 <= source < comm_obj.size:
            raise MPIError("MPI_ERR_RANK", f"source {source} out of range", rank=self.rank)
        addr = check_addr(buf, rank=self.rank)
        me = comm_obj.rank_of(self.rank)
        for ins in self.instruments:
            ins.on_p2p(self, "recv", source, me, int(tag), count * dtype.size)
        payload = yield Recv(
            comm_obj.context_id + P2P_CONTEXT_OFFSET, source, me, int(tag)
        )
        nbytes = count * dtype.size
        if len(payload) > nbytes:
            raise MPIError(
                "MPI_ERR_TRUNCATE",
                f"message of {len(payload)} bytes exceeds receive buffer of {nbytes}",
                rank=self.rank,
            )
        self.memory.write(addr, payload)
        return len(payload) // dtype.size

    def Isend(
        self, buf: int, count: int, datatype: int, dest: int, tag: int, comm: int
    ) -> Generator:
        """MPI_Isend: eager-buffered, so the request is born complete."""
        yield from self.Send(buf, count, datatype, dest, tag, comm)
        return Request(kind="send", complete=True)

    def Irecv(
        self, buf: int, count: int, datatype: int, source: int, tag: int, comm: int
    ) -> "Request":
        """MPI_Irecv: lazy — the receive happens at :meth:`Wait`.

        Equivalent to an early post under eager sends and exact-match
        receives (see :mod:`repro.simmpi.request`).  Not a generator:
        nothing communicates until the request is waited on.
        """
        req = Request(kind="recv")
        req._pending = {
            "buf": buf,
            "count": count,
            "datatype": datatype,
            "source": source,
            "tag": tag,
            "comm": comm,
        }
        self._live_requests.append(req)
        return req

    def Wait(self, request: "Request") -> Generator:
        """MPI_Wait: complete a request; returns received element count."""
        if request.complete:
            return request.result
        p = request._pending
        received = yield from self.Recv(
            p["buf"], p["count"], p["datatype"], p["source"], p["tag"], p["comm"]
        )
        request.complete = True
        request.result = received
        request._pending = {}
        return received

    def Waitall(self, requests: Sequence["Request"]) -> Generator:
        """MPI_Waitall: complete every request, in order."""
        results = []
        for req in requests:
            r = yield from self.Wait(req)
            results.append(r)
        return results

    def Sendrecv(
        self,
        sendbuf: int,
        sendcount: int,
        dest: int,
        recvbuf: int,
        recvcount: int,
        source: int,
        datatype: int,
        tag: int,
        comm: int,
    ) -> Generator:
        """MPI_Sendrecv with a shared datatype and tag."""
        yield from self.Send(sendbuf, sendcount, datatype, dest, tag, comm)
        received = yield from self.Recv(recvbuf, recvcount, datatype, source, tag, comm)
        return received

    # -- communicator construction (not an injection target) -----------

    def Comm_split(self, comm: int, color: int, key: int | None = None) -> Generator:
        """MPI_Comm_split: returns the handle of this rank's new comm.

        Implemented as a gather of colours to comm-local rank 0 (which
        creates the sub-communicators deterministically) followed by a
        scatter of handles.  Communicator construction is not a fault
        target in the paper, so this path is not instrumented.
        """
        comm_obj = resolve_comm(self.runtime, comm, rank=self.rank)
        env = self._env(comm_obj)
        me = comm_obj.rank_of(self.rank)
        payload = int(color).to_bytes(8, "little", signed=True)
        if me == 0:
            colours = {comm_obj.world_rank(0): int(color)}
            for r in range(1, comm_obj.size):
                raw = yield from env.recv(r, _COMM_CTRL_STEP)
                colours[comm_obj.world_rank(r)] = int.from_bytes(raw, "little", signed=True)
            created = self.runtime.comm_factory.split(comm_obj, colours)
            handles = {
                world: created[colours[world]][1]
                for world in comm_obj.group
            }
            for r in range(1, comm_obj.size):
                h = handles[comm_obj.world_rank(r)]
                yield from env.send(r, _COMM_CTRL_STEP, h.to_bytes(8, "little"))
            return handles[comm_obj.world_rank(0)]
        else:
            yield from env.send(0, _COMM_CTRL_STEP, payload)
            raw = yield from env.recv(0, _COMM_CTRL_STEP)
            return int.from_bytes(raw, "little")

    def Comm_dup(self, comm: int) -> Generator:
        """MPI_Comm_dup: a new communicator over the same group."""
        comm_obj = resolve_comm(self.runtime, comm, rank=self.rank)
        env = self._env(comm_obj)
        me = comm_obj.rank_of(self.rank)
        if me == 0:
            _, handle = self.runtime.comm_factory.create(
                comm_obj.group, name=f"{comm_obj.name}/dup"
            )
            for r in range(1, comm_obj.size):
                yield from env.send(r, _COMM_CTRL_STEP, handle.to_bytes(8, "little"))
            return handle
        raw = yield from env.recv(0, _COMM_CTRL_STEP)
        return int.from_bytes(raw, "little")
