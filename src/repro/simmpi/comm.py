"""Communicators for the simulated MPI runtime.

A :class:`Communicator` is a group of world ranks plus a *context id*.
As in real MPI, the context id is what isolates traffic: every message is
matched on ``(context_id, src, dst, tag)``, so a rank that joins a
collective with a corrupted-but-alive communicator handle simply talks
into a different context and the original collective deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import MPIError
from .handles import HandleSpace


@dataclass(frozen=True)
class Communicator:
    """An MPI communicator.

    Attributes
    ----------
    context_id:
        Globally unique id for message matching.
    group:
        World ranks that are members, in comm-rank order.
    name:
        Debug label (``"MPI_COMM_WORLD"`` for the world comm).
    """

    context_id: int
    group: tuple[int, ...]
    name: str = ""
    _rank_of: dict[int, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(
            self, "_rank_of", {world: local for local, world in enumerate(self.group)}
        )

    @property
    def size(self) -> int:
        return len(self.group)

    def rank_of(self, world_rank: int) -> int:
        """Comm-local rank of ``world_rank``; MPI_ERR if not a member."""
        try:
            return self._rank_of[world_rank]
        except KeyError:
            raise MPIError(
                "MPI_ERR_COMM",
                f"rank {world_rank} is not in communicator {self.name or self.context_id}",
                rank=world_rank,
            ) from None

    def world_rank(self, local_rank: int) -> int:
        """World rank of comm-local ``local_rank``."""
        if not 0 <= local_rank < self.size:
            raise MPIError("MPI_ERR_RANK", f"local rank {local_rank} out of range")
        return self.group[local_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._rank_of


class CommFactory:
    """Creates communicators with unique context ids.

    One factory per runtime; it also owns the pointer-like handle space
    so that corrupted comm handles behave like corrupted pointers (see
    :mod:`repro.simmpi.handles`).
    """

    def __init__(self):
        self.space: HandleSpace[Communicator] = HandleSpace("comm", base=0x7F4C_0000_0000)
        self._next_context = 1
        self.created: list[Communicator] = []

    def create(self, group: tuple[int, ...], name: str = "") -> tuple[Communicator, int]:
        """Create a communicator over ``group``; returns (comm, handle)."""
        if len(set(group)) != len(group):
            raise ValueError(f"duplicate ranks in group {group}")
        comm = Communicator(self._next_context, tuple(group), name or f"comm#{self._next_context}")
        self._next_context += 1
        handle = self.space.register(comm)
        self.created.append(comm)
        return comm, handle

    def context_map(self) -> dict[int, tuple[str, tuple[int, ...]]]:
        """``context_id -> (name, group)`` for every communicator created.

        This is the forensic lookup hang diagnostics use to name the
        communicator a blocked receive was posted on (see
        :mod:`repro.obs.forensics`).
        """
        return {c.context_id: (c.name, c.group) for c in self.created}

    def world(self, nranks: int) -> tuple[Communicator, int]:
        """Create MPI_COMM_WORLD over ``nranks`` ranks."""
        return self.create(tuple(range(nranks)), name="MPI_COMM_WORLD")

    def split(
        self, parent: Communicator, assignments: dict[int, int]
    ) -> dict[int, tuple[Communicator, int]]:
        """MPI_Comm_split: partition ``parent`` by colour.

        ``assignments`` maps each member world rank to a colour.  Returns
        ``colour -> (comm, handle)``; key order (rank order within a
        colour) follows world-rank order, as with equal keys in MPI.
        """
        colours: dict[int, list[int]] = {}
        for world in parent.group:
            colour = assignments.get(world)
            if colour is None:
                continue
            colours.setdefault(colour, []).append(world)
        return {
            colour: self.create(tuple(sorted(members)), name=f"{parent.name}/split{colour}")
            for colour, members in sorted(colours.items())
        }
