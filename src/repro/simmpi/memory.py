"""Per-rank simulated memory.

Each rank owns a flat *arena* — a contiguous span of a synthetic address
space backed by one numpy byte array.  Applications allocate typed
buffers out of the arena with a bump allocator; the MPI layer addresses
memory only through ``(addr, nbytes)`` pairs.

The failure semantics are the ones that matter for fault injection:

* any access that leaves the arena raises
  :class:`~repro.simmpi.errors.SegmentationFault` (the dominant outcome
  for bit-flipped ``count`` parameters in the paper's Fig. 9);
* an access that stays inside the arena but crosses into a *different*
  allocation silently corrupts it — heap-smash semantics, which is how a
  modestly corrupted count turns into ``WRONG_ANS`` several collectives
  later;
* with an *allocation cap* armed (``alloc_cap``), any single allocation
  request larger than the cap raises the same simulated segfault — the
  resource guard that keeps a bit-flipped size that reached application
  allocation code from turning into a host-process ``MemoryError``.

Allocation layout is deterministic, so golden and injected runs see the
same addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .datatypes import Datatype
from .errors import SegmentationFault

#: Base of the simulated data arena (distinct from the MPI-object heap).
ARENA_BASE = 0x0000_5555_0000_0000

#: Default arena size in bytes.  Big enough for every workload in the
#: suite, small enough that huge corrupted counts always fall outside.
DEFAULT_ARENA_SIZE = 1 << 22

_ALIGN = 16


@dataclass(frozen=True)
class Segment:
    """One allocation inside an arena."""

    addr: int
    nbytes: int
    label: str

    @property
    def end(self) -> int:
        return self.addr + self.nbytes


class ArrayRef:
    """A typed view of an allocation.

    ``view`` is the numpy array applications compute on; ``addr`` is what
    they pass to MPI calls.  Mutating ``view`` mutates arena memory
    directly (it is a numpy view, not a copy).
    """

    def __init__(self, memory: "Memory", segment: Segment, dtype: Datatype):
        self.memory = memory
        self.segment = segment
        self.dtype = dtype

    @property
    def addr(self) -> int:
        return self.segment.addr

    @property
    def count(self) -> int:
        return self.segment.nbytes // self.dtype.size

    @property
    def view(self) -> np.ndarray:
        off = self.segment.addr - self.memory.base
        raw = self.memory.raw[off : off + self.segment.nbytes]
        return raw.view(self.dtype.np_dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayRef({self.segment.label!r}, addr={self.addr:#x}, count={self.count}, {self.dtype.name})"


class Memory:
    """A rank's simulated address space.

    Parameters
    ----------
    rank:
        Owning rank (for error messages).
    size:
        Arena size in bytes.
    base:
        Arena base address; all ranks use the same base, as with
        identically mapped SPMD processes.
    tracer:
        Optional event tracer; allocations emit ``alloc`` events.
    sanitizer:
        Optional :class:`~repro.simmpi.sanitize.Sanitizer`.  When set,
        accesses that cross allocation boundaries (the heap-smash path)
        and out-of-arena accesses are recorded as violations; the
        permissive fault semantics themselves are unchanged.
    alloc_cap:
        Optional cap (bytes) on a *single* allocation request.  A
        request above the cap raises
        :class:`~repro.simmpi.errors.SegmentationFault` — the simulated
        analogue of a failed ``malloc`` on a corrupted size — instead of
        the host-level :class:`MemoryError` of arena exhaustion.
        ``None`` (the default) disables the guard.
    """

    def __init__(
        self,
        rank: int,
        size: int = DEFAULT_ARENA_SIZE,
        base: int = ARENA_BASE,
        tracer=None,
        alloc_cap: int | None = None,
        sanitizer=None,
    ):
        self.rank = rank
        self.base = base
        self.size = size
        self.tracer = tracer
        self.sanitizer = sanitizer
        if alloc_cap is not None and alloc_cap < 1:
            raise ValueError(f"alloc_cap must be >= 1 bytes, got {alloc_cap}")
        self.alloc_cap = alloc_cap
        self.raw = np.zeros(size, dtype=np.uint8)
        self.segments: list[Segment] = []
        self._brk = base

    # -- allocation --------------------------------------------------

    def alloc(self, nbytes: int, label: str = "") -> Segment:
        """Bump-allocate ``nbytes`` (16-byte aligned)."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self.alloc_cap is not None and nbytes > self.alloc_cap:
            # A corrupted size walked into allocation code: fail it on
            # the deterministic simulated-segfault path rather than the
            # host heap.
            raise SegmentationFault(self._brk, nbytes, rank=self.rank)
        addr = self._brk
        end = addr + nbytes
        if end > self.base + self.size:
            raise MemoryError(
                f"arena exhausted on rank {self.rank}: need {nbytes} bytes at {addr:#x}"
            )
        pad = (-end) % _ALIGN
        self._brk = end + pad
        seg = Segment(addr, nbytes, label)
        self.segments.append(seg)
        if self.tracer is not None:
            self.tracer.emit("alloc", self.rank, addr=addr, nbytes=nbytes, label=label)
        return seg

    def alloc_array(self, count: int, dtype: Datatype, label: str = "") -> ArrayRef:
        """Allocate a typed buffer of ``count`` elements."""
        seg = self.alloc(count * dtype.size, label=label)
        return ArrayRef(self, seg, dtype)

    # -- raw access (the MPI layer's view) ---------------------------

    def _check(self, addr: int, nbytes: int) -> int:
        if nbytes < 0:
            if self.sanitizer is not None:
                self.sanitizer.record("oob_access", self.rank, addr=addr, nbytes=nbytes)
            raise SegmentationFault(addr, nbytes, rank=self.rank)
        off = addr - self.base
        if off < 0 or off + nbytes > self.size:
            if self.sanitizer is not None:
                self.sanitizer.record("oob_access", self.rank, addr=addr, nbytes=nbytes)
            raise SegmentationFault(addr, nbytes, rank=self.rank)
        if self.sanitizer is not None and nbytes > 0:
            seg = self.segment_of(addr)
            if seg is not None and addr + nbytes > seg.end:
                # In-arena but crossing into a neighbouring allocation:
                # the access succeeds (heap-smash semantics) — record it.
                self.sanitizer.record(
                    "buffer_overlap", self.rank,
                    addr=addr, nbytes=nbytes,
                    segment=seg.label or hex(seg.addr), seg_end=seg.end,
                )
        return off

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` raw bytes; segfaults if outside the arena."""
        off = self._check(addr, nbytes)
        return self.raw[off : off + nbytes].tobytes()

    def write(self, addr: int, data: bytes) -> None:
        """Write raw bytes; segfaults if outside the arena.

        Writes that overrun the owning segment but stay inside the arena
        succeed and corrupt neighbouring allocations — by design.
        """
        off = self._check(addr, len(data))
        self.raw[off : off + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def in_arena(self, addr: int, nbytes: int = 1) -> bool:
        off = addr - self.base
        return 0 <= off and off + nbytes <= self.size and nbytes >= 0

    def segment_of(self, addr: int) -> Segment | None:
        """The allocation containing ``addr``, if any."""
        for seg in self.segments:
            if seg.addr <= addr < seg.end:
                return seg
        return None

    def flip_bit(self, addr: int, bit: int) -> None:
        """Flip one bit of arena memory (used by the fault injector)."""
        off = self._check(addr + bit // 8, 1)
        self.raw[off] ^= np.uint8(1 << (bit % 8))
