"""Collective call records and parameter schemas.

A :class:`CollectiveCall` is built at every collective entry and handed
to the registered instruments *before* validation and execution.  The
fault injector mutates ``args`` in place (a transient fault in the call's
input parameters, exactly the paper's fault model); the profiler records
the clean call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Parameter schema per collective, in the MPI interface's order.
#: Keys name the entries of ``CollectiveCall.args``.
COLLECTIVE_PARAMS: dict[str, tuple[str, ...]] = {
    "Bcast": ("buffer", "count", "datatype", "root", "comm"),
    "Reduce": ("sendbuf", "recvbuf", "count", "datatype", "op", "root", "comm"),
    "Allreduce": ("sendbuf", "recvbuf", "count", "datatype", "op", "comm"),
    "Scatter": ("sendbuf", "sendcount", "recvbuf", "recvcount", "datatype", "root", "comm"),
    "Gather": ("sendbuf", "sendcount", "recvbuf", "recvcount", "datatype", "root", "comm"),
    "Allgather": ("sendbuf", "sendcount", "recvbuf", "recvcount", "datatype", "comm"),
    "Alltoall": ("sendbuf", "sendcount", "recvbuf", "recvcount", "datatype", "comm"),
    "Alltoallv": (
        "sendbuf",
        "sendcounts",
        "sdispls",
        "recvbuf",
        "recvcounts",
        "rdispls",
        "datatype",
        "comm",
    ),
    "Barrier": ("comm",),
    "Scan": ("sendbuf", "recvbuf", "count", "datatype", "op", "comm"),
    "Exscan": ("sendbuf", "recvbuf", "count", "datatype", "op", "comm"),
    "Reduce_scatter": ("sendbuf", "recvbuf", "recvcount", "datatype", "op", "comm"),
    "Gatherv": (
        "sendbuf",
        "sendcount",
        "recvbuf",
        "recvcounts",
        "displs",
        "datatype",
        "root",
        "comm",
    ),
    "Scatterv": (
        "sendbuf",
        "sendcounts",
        "displs",
        "recvbuf",
        "recvcount",
        "datatype",
        "root",
        "comm",
    ),
    "Allgatherv": (
        "sendbuf",
        "sendcount",
        "recvbuf",
        "recvcounts",
        "displs",
        "datatype",
        "comm",
    ),
    "Alltoallw": (
        "sendbuf",
        "sendcounts",
        "sdispls",
        "sendtypes",
        "recvbuf",
        "recvcounts",
        "rdispls",
        "recvtypes",
        "comm",
    ),
}

#: Rooted collectives (one process has a distinguished communication
#: pattern) — the basis of semantic-driven pruning (paper § III-A).
ROOTED_COLLECTIVES = frozenset(
    {"Bcast", "Reduce", "Scatter", "Gather", "Gatherv", "Scatterv"}
)

#: Parameters that denote message *payload* buffers (fault target = a bit
#: of the buffer contents, not of the pointer — the paper never flips
#: buffer addresses because the outcome is trivially catastrophic).
BUFFER_PARAMS = frozenset({"buffer", "sendbuf", "recvbuf"})

#: Parameters holding pointer-like MPI object handles.
HANDLE_PARAMS = frozenset({"datatype", "op", "comm"})

#: Parameters holding 32-bit integer values.
SCALAR_PARAMS = frozenset({"count", "sendcount", "recvcount", "root"})

#: Parameters holding per-peer integer arrays (alltoallv/w).
VECTOR_PARAMS = frozenset(
    {"sendcounts", "recvcounts", "sdispls", "rdispls", "displs"}
)

#: Parameters holding per-peer arrays of pointer-like handles
#: (alltoallw's datatype arrays).
HANDLE_VECTOR_PARAMS = frozenset({"sendtypes", "recvtypes"})

#: Stable small integer per collective name, used as the ``Type`` feature
#: of the ML model (paper § III-C, feature 1).
COLLECTIVE_TYPE_IDS: dict[str, int] = {
    name: i for i, name in enumerate(sorted(COLLECTIVE_PARAMS))
}


@dataclass
class CollectiveCall:
    """One rank's invocation of one collective operation.

    Attributes
    ----------
    rank:
        World rank making the call.
    name:
        Collective name, e.g. ``"Allreduce"``.
    site:
        Static call-site id (``file:lineno`` of the caller).
    stack:
        Canonicalised call stack (outermost first), the paper's
        ``backtrace()`` equivalent.
    invocation:
        0-based index of this call among this rank's calls at ``site``.
    seq:
        0-based index among all of this rank's collective calls.
    phase:
        Application phase (``init``/``input``/``compute``/``end``).
    args:
        Parameter name → value, following :data:`COLLECTIVE_PARAMS`.
        Mutated in place by the fault injector.
    """

    rank: int
    name: str
    site: str
    stack: tuple[str, ...]
    invocation: int
    seq: int
    phase: str
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def site_key(self) -> tuple[str, str]:
        """Identity of the static call site: (collective name, location)."""
        return (self.name, self.site)

    @property
    def stack_hash(self) -> int:
        """Stable hash of the canonical call stack."""
        return hash(self.stack)

    def param_names(self) -> tuple[str, ...]:
        return COLLECTIVE_PARAMS[self.name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CollectiveCall({self.name} @ {self.site}, rank={self.rank}, "
            f"inv={self.invocation}, phase={self.phase})"
        )


#: Parameter schema per point-to-point operation (the FastFIT
#: *extension* surface: the paper names "other programming elements of
#: an HPC application" as future work, and p2p is the natural next one).
P2P_PARAMS: dict[str, tuple[str, ...]] = {
    "Send": ("buf", "count", "datatype", "dest", "tag", "comm"),
    "Recv": ("buf", "count", "datatype", "source", "tag", "comm"),
}


@dataclass
class P2PCall:
    """One rank's point-to-point operation, mutable like a collective
    call.  Only built when an instrument opts in via
    ``wants_p2p_calls`` (building stacks on every halo exchange would
    tax the common path)."""

    rank: int
    kind: str  # "Send" | "Recv"
    site: str
    stack: tuple[str, ...]
    invocation: int
    seq: int
    phase: str
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def site_key(self) -> tuple[str, str]:
        return (self.kind, self.site)

    def param_names(self) -> tuple[str, ...]:
        return P2P_PARAMS[self.kind]


class Instrument:
    """Base class for collective-entry hooks (profiler, fault injector)."""

    #: Set True to receive full, mutable :class:`P2PCall` records via
    #: :meth:`on_p2p_call` (fault injection into p2p parameters).
    wants_p2p_calls: bool = False

    def on_p2p_call(self, ctx, call: "P2PCall") -> None:
        """Called with a mutable record before a p2p operation executes,
        only when ``wants_p2p_calls`` is True."""

    def on_collective(self, ctx, call: CollectiveCall) -> None:
        """Called at every collective entry, before validation."""

    def on_complete(self, ctx, call: CollectiveCall) -> None:
        """Called after the collective finished without raising."""

    def on_p2p(self, ctx, kind: str, src: int, dst: int, tag: int, nbytes: int) -> None:
        """Called at every point-to-point operation.

        Point-to-point is never a fault target (the paper's model covers
        collective parameters only), but the profiler records it: the
        communication *trace* feeds process-equivalence analysis
        (paper § III-A).
        """
