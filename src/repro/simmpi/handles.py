"""Pointer-like handle space for MPI objects.

In Open MPI (the style of implementation deployed on Titan's Cray stack),
``MPI_Datatype``, ``MPI_Op``, and ``MPI_Comm`` are *pointers* to heap
objects.  FastFIT's observation that bit flips in these parameters most
often end in ``SEG_FAULT`` (Fig. 9 of the paper) follows directly from
that representation: a flipped pointer usually lands in unmapped memory.

This module reproduces that behaviour.  Every MPI object is registered at
a synthetic 48-bit "address"; resolving a handle distinguishes three
cases:

* the handle is exactly a registered object's base address → the object;
* the handle falls *inside* a registered object's extent (a low-bit flip)
  → the library reads a corrupted object, notices a bad magic field, and
  raises :class:`~repro.simmpi.errors.MPIError`;
* anything else → dereferencing unmapped memory, i.e.
  :class:`~repro.simmpi.errors.SegmentationFault`.

Handles are spaced ``OBJECT_EXTENT`` apart so that *some* pairs of live
objects differ by a single bit — exactly the rare aliasing that lets a
flipped ``MPI_Op`` silently become a different valid op.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from .errors import MPIError, SegmentationFault

T = TypeVar("T")

#: Base of the synthetic heap region where MPI objects live.  Chosen to
#: look like a 64-bit userspace heap pointer.
HANDLE_BASE = 0x7F4A_0000_0000

#: Size in bytes of each simulated MPI object.  A power of two, so
#: consecutive objects differ in a single address bit.
OBJECT_EXTENT = 0x40

#: Number of bits in a handle value (pointers on the target platform).
HANDLE_BITS = 64


class HandleSpace(Generic[T]):
    """A registry mapping pointer-like handles to MPI objects.

    Each runtime owns separate spaces for datatypes, ops, and
    communicators (real MPI objects of different classes live in
    different allocator pools).
    """

    def __init__(self, name: str, base: int = HANDLE_BASE):
        self.name = name
        self.base = base
        self._objects: dict[int, T] = {}
        self._next = base

    def register(self, obj: T) -> int:
        """Register ``obj`` and return its handle (base address)."""
        handle = self._next
        self._next += OBJECT_EXTENT
        self._objects[handle] = obj
        return handle

    def handles(self) -> list[int]:
        """All live handles, in registration order."""
        return sorted(self._objects)

    def objects(self) -> list[T]:
        return [self._objects[h] for h in self.handles()]

    def resolve(self, handle: int, *, rank: int | None = None) -> T:
        """Dereference ``handle``; raise like a real MPI library would.

        See the module docstring for the three outcomes.
        """
        obj = self._objects.get(handle)
        if obj is not None:
            return obj
        # Inside a live object but not at its base: the magic/refcount
        # fields read garbage -> the library reports an invalid handle.
        offset = handle - self.base
        if 0 <= offset < self._next - self.base and handle % OBJECT_EXTENT != 0:
            aligned = handle - (handle % OBJECT_EXTENT)
            if aligned in self._objects:
                raise MPIError(
                    f"MPI_ERR_{self.name.upper()}",
                    f"corrupted {self.name} handle {handle:#x}",
                    rank=rank,
                )
        raise SegmentationFault(handle, OBJECT_EXTENT, rank=rank)

    def contains(self, handle: int) -> bool:
        return handle in self._objects

    def __len__(self) -> int:
        return len(self._objects)
