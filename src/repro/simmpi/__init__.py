"""``repro.simmpi`` — a deterministic, single-process MPI simulator.

Built as the substrate for FastFIT fault-injection studies: collectives
are expanded into per-rank point-to-point schedules computed from each
rank's *own* parameters, memory is a simulated arena with segfault and
heap-smash semantics, and MPI object handles are pointer-like — so
single-bit parameter corruption produces the same six application
responses the paper observes on real hardware (Table I).
"""

from .calls import (
    BUFFER_PARAMS,
    COLLECTIVE_PARAMS,
    COLLECTIVE_TYPE_IDS,
    HANDLE_PARAMS,
    HANDLE_VECTOR_PARAMS,
    P2P_PARAMS,
    ROOTED_COLLECTIVES,
    SCALAR_PARAMS,
    VECTOR_PARAMS,
    CollectiveCall,
    Instrument,
    P2PCall,
)
from .comm import CommFactory, Communicator
from .context import PHASES, Context
from .datatypes import Datatype, make_datatype_space
from .errors import (
    AppError,
    DeadlockError,
    FiberCrashed,
    MPIError,
    SegmentationFault,
    SimMPIError,
    StepBudgetExceeded,
)
from .memory import ArrayRef, Memory
from .ops import ReduceOp, make_op_space
from .request import Request
from .runtime import AppFn, RunResult, SimMPI, run_app
from .scheduler import DeliveryTap
from .sanitize import Sanitizer, SanitizerViolation, Violation

__all__ = [
    "AppError",
    "AppFn",
    "ArrayRef",
    "BUFFER_PARAMS",
    "COLLECTIVE_PARAMS",
    "COLLECTIVE_TYPE_IDS",
    "CollectiveCall",
    "CommFactory",
    "Communicator",
    "Context",
    "Datatype",
    "DeadlockError",
    "DeliveryTap",
    "FiberCrashed",
    "HANDLE_PARAMS",
    "HANDLE_VECTOR_PARAMS",
    "P2PCall",
    "P2P_PARAMS",
    "Instrument",
    "MPIError",
    "Memory",
    "PHASES",
    "ROOTED_COLLECTIVES",
    "ReduceOp",
    "Request",
    "RunResult",
    "SCALAR_PARAMS",
    "Sanitizer",
    "SanitizerViolation",
    "SegmentationFault",
    "SimMPI",
    "SimMPIError",
    "StepBudgetExceeded",
    "VECTOR_PARAMS",
    "Violation",
    "make_datatype_space",
    "make_op_space",
    "run_app",
]
