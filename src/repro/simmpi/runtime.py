"""Top-level simulated MPI runtime.

One :class:`SimMPI` instance is one job: it owns the handle spaces, the
world communicator, and the per-rank contexts, and drives the fibers to
completion.  Runtimes are single-use so every run — golden or injected —
sees an identical, deterministic handle layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Sequence

from .calls import Instrument
from .comm import CommFactory
from .context import Context
from .datatypes import make_datatype_space
from .fiber import Fiber
from .memory import DEFAULT_ARENA_SIZE
from .ops import ReduceOp, make_op_space
from .sanitize import Sanitizer
from .scheduler import DEFAULT_STEP_BUDGET, DeliveryTap, Scheduler

#: Signature of an application entry point: a generator function taking
#: a per-rank :class:`~repro.simmpi.context.Context`.
AppFn = Callable[[Context], Generator]


@dataclass
class RunResult:
    """Outcome of one complete job execution.

    Attributes
    ----------
    results:
        Per-rank return values of the application entry point.
    steps:
        Total scheduler events consumed.
    contexts:
        The per-rank contexts (profilers read their counters from here).
    """

    results: list[Any]
    steps: int
    contexts: list[Context] = field(repr=False, default_factory=list)
    #: The sanitizer that watched the run (``None`` unless the runtime
    #: was built with ``sanitize=...``); check ``.violations``.
    sanitizer: Sanitizer | None = field(repr=False, default=None)


class SimMPI:
    """A single simulated MPI job.

    Parameters
    ----------
    nranks:
        Number of MPI processes.
    step_budget:
        Scheduler event budget; exceeding it means ``INF_LOOP``.
    arena_size:
        Per-rank simulated memory size in bytes.
    alloc_cap:
        Optional per-rank cap (bytes) on a single simulated allocation;
        a request above it raises the simulated segfault path (see
        :class:`~repro.simmpi.memory.Memory`).
    tracer:
        Optional :class:`~repro.obs.events.Tracer`; when set, the
        scheduler, contexts, and memories emit structured events into
        it.  ``None`` (the default) keeps the hot path untraced.
    sanitize:
        ``True`` (or a preconstructed
        :class:`~repro.simmpi.sanitize.Sanitizer`) arms the opt-in
        sanitizer layer: unmatched-message and pending-request leaks at
        teardown, buffer-overlap/out-of-arena tripwires, and send-recv
        size mismatch checks.  Findings land on
        ``RunResult.sanitizer.violations`` (and the tracer, if any).
    recorder:
        Optional append-only sink for the scheduler's deterministic
        replay log (see :mod:`repro.verify.replay`).
    tap:
        Optional :class:`~repro.simmpi.scheduler.DeliveryTap` handed to
        the scheduler for wire-fault injection at the delivery layer.
    extra_ops:
        Additional :class:`~repro.simmpi.ops.ReduceOp` objects to
        register after the predefined ones (the predefined handle
        layout is unchanged).  Used by the conformance harness to test
        non-commutative reduction semantics.
    """

    #: Recognised collective-algorithm selections per operation.
    ALGORITHM_CHOICES = {
        "bcast": ("binomial", "chain"),
        "allreduce": ("auto", "recursive_doubling", "reduce_bcast"),
    }

    def __init__(
        self,
        nranks: int,
        step_budget: int = DEFAULT_STEP_BUDGET,
        arena_size: int = DEFAULT_ARENA_SIZE,
        algorithms: dict[str, str] | None = None,
        alloc_cap: int | None = None,
        tracer=None,
        sanitize: "bool | Sanitizer" = False,
        recorder=None,
        extra_ops: Sequence[ReduceOp] = (),
        tap: DeliveryTap | None = None,
    ):
        if nranks < 1:
            raise ValueError(f"need at least one rank, got {nranks}")
        self.nranks = nranks
        self.step_budget = step_budget
        self.arena_size = arena_size
        self.alloc_cap = alloc_cap
        self.tracer = tracer
        if sanitize is True:
            self.sanitizer: Sanitizer | None = Sanitizer(tracer=tracer)
        elif isinstance(sanitize, Sanitizer):
            # Not a truthiness test: an empty Sanitizer has len() == 0.
            self.sanitizer = sanitize
        else:
            self.sanitizer = None
        self.recorder = recorder
        self.tap = tap
        self.algorithms = {"bcast": "binomial", "allreduce": "auto"}
        for key, value in (algorithms or {}).items():
            if key not in self.ALGORITHM_CHOICES:
                raise ValueError(f"no algorithm choice for {key!r}")
            if value not in self.ALGORITHM_CHOICES[key]:
                raise ValueError(
                    f"unknown {key} algorithm {value!r}; "
                    f"choices: {self.ALGORITHM_CHOICES[key]}"
                )
            self.algorithms[key] = value
        self.type_space, self.type_handles = make_datatype_space()
        self.op_space, self.op_handles = make_op_space(extra_ops=tuple(extra_ops))
        self.comm_factory = CommFactory()
        self.world, self.world_handle = self.comm_factory.world(nranks)
        self._used = False

    def prepare(
        self, app_fn: AppFn, instruments: Sequence[Instrument] = ()
    ) -> tuple[list[Context], list[Fiber], Scheduler]:
        """Build the per-rank contexts, fibers, and scheduler for a run.

        Split out of :meth:`run` so the snapshot engine
        (:mod:`repro.snapshot`) can instrument fibers and prime the
        scheduler from a restored state before driving them; consumes
        the runtime's single use.
        """
        if self._used:
            raise RuntimeError("SimMPI runtimes are single-use; create a fresh one per run")
        self._used = True
        contexts = [Context(self, rank, instruments) for rank in range(self.nranks)]
        fibers = [Fiber(rank, app_fn(ctx)) for rank, ctx in enumerate(contexts)]
        scheduler = Scheduler(
            fibers,
            step_budget=self.step_budget,
            tracer=self.tracer,
            comm_lookup=self.comm_factory.context_map,
            recorder=self.recorder,
            tap=self.tap,
        )
        return contexts, fibers, scheduler

    def finish(
        self, scheduler: Scheduler, contexts: list[Context], results: list[Any]
    ) -> RunResult:
        """Teardown sweep + result assembly for a completed run."""
        if self.sanitizer is not None:
            # Teardown sweep: a clean finish may still have leaked
            # messages in the match space or unwaited requests.
            self.sanitizer.check_scheduler(scheduler)
            self.sanitizer.check_contexts(contexts)
        return RunResult(
            results=results,
            steps=scheduler.steps,
            contexts=contexts,
            sanitizer=self.sanitizer,
        )

    def run(self, app_fn: AppFn, instruments: Sequence[Instrument] = ()) -> RunResult:
        """Execute ``app_fn`` on every rank and return the results.

        Raises whatever error aborts the job (see
        :mod:`repro.simmpi.errors`); runtimes are single-use.
        """
        contexts, fibers, scheduler = self.prepare(app_fn, instruments)
        results = scheduler.run()
        return self.finish(scheduler, contexts, results)


def run_app(
    app_fn: AppFn,
    nranks: int,
    instruments: Sequence[Instrument] = (),
    step_budget: int = DEFAULT_STEP_BUDGET,
    arena_size: int = DEFAULT_ARENA_SIZE,
    algorithms: dict[str, str] | None = None,
    alloc_cap: int | None = None,
    tracer=None,
    sanitize: "bool | Sanitizer" = False,
    recorder=None,
    extra_ops: Sequence[ReduceOp] = (),
    tap: DeliveryTap | None = None,
) -> RunResult:
    """Convenience wrapper: build a fresh runtime and run ``app_fn``."""
    return SimMPI(
        nranks,
        step_budget=step_budget,
        arena_size=arena_size,
        algorithms=algorithms,
        alloc_cap=alloc_cap,
        tracer=tracer,
        sanitize=sanitize,
        recorder=recorder,
        extra_ops=extra_ops,
        tap=tap,
    ).run(app_fn, instruments=instruments)
