"""Nonblocking point-to-point requests.

``Isend`` completes immediately (the runtime buffers eagerly, like an
MPI implementation under the eager threshold), so its request is born
complete.  ``Irecv`` is *lazy*: the matching receive is performed when
the request is waited on.  With eager-buffered sends and no wildcard
receives this is observationally equivalent to posting early, and it
keeps the scheduler's blocking model simple — a deliberate simulator
simplification documented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Request:
    """Handle for a nonblocking operation.

    ``kind`` is ``"send"`` or ``"recv"``; completed requests carry the
    received element count in ``result`` (sends carry ``0``).
    """

    kind: str
    complete: bool = False
    result: int = 0
    #: Deferred receive coordinates (lazy Irecv), consumed by Wait.
    _pending: dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def is_send(self) -> bool:
        return self.kind == "send"
