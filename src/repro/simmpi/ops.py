"""MPI reduction operation registry for the simulated runtime.

Each op knows how to combine two raw byte payloads interpreted through a
:class:`~repro.simmpi.datatypes.Datatype`, and which datatypes it is
defined for (``MPI_BAND`` on a float is an ``MPI_ERR_OP`` in real MPI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .datatypes import Datatype
from .errors import MPIError
from .handles import HandleSpace


@dataclass(frozen=True)
class ReduceOp:
    """A predefined MPI reduction operation.

    Attributes
    ----------
    name:
        MPI name, e.g. ``"MPI_SUM"``.
    fn:
        Elementwise combiner over two numpy arrays.
    integer_only:
        True for bitwise/logical ops that real MPI rejects on floats.
    commutative:
        False for ops where operand order matters; reduction drivers
        then fold strictly in comm rank order, as the MPI standard
        requires for non-commutative user ops.  All predefined ops are
        commutative.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray] = field(repr=False)
    integer_only: bool = False
    commutative: bool = True

    def apply(self, a: bytes, b: bytes, dtype: Datatype, *, rank: int | None = None) -> bytes:
        """Combine payloads ``a`` (partial result) and ``b`` elementwise.

        Raises :class:`MPIError` when the op is undefined for ``dtype``,
        mirroring ``MPI_ERR_OP``.
        """
        if self.integer_only and not dtype.is_integer:
            raise MPIError(
                "MPI_ERR_OP",
                f"{self.name} is not defined for {dtype.name}",
                rank=rank,
            )
        av = np.frombuffer(a, dtype=dtype.np_dtype)
        bv = np.frombuffer(b, dtype=dtype.np_dtype)
        n = min(av.size, bv.size)
        with np.errstate(all="ignore"):
            out = self.fn(av[:n], bv[:n])
        return np.ascontiguousarray(out.astype(dtype.np_dtype, copy=False)).tobytes()


def _logical(fn: Callable[[np.ndarray, np.ndarray], np.ndarray]):
    def wrapped(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return fn(a != 0, b != 0).astype(a.dtype)

    return wrapped


#: Predefined ops in registration order (determines handle layout).
_PREDEFINED: list[ReduceOp] = [
    ReduceOp("MPI_SUM", np.add),
    ReduceOp("MPI_PROD", np.multiply),
    ReduceOp("MPI_MAX", np.maximum),
    ReduceOp("MPI_MIN", np.minimum),
    ReduceOp("MPI_LAND", _logical(np.logical_and)),
    ReduceOp("MPI_LOR", _logical(np.logical_or)),
    ReduceOp("MPI_BAND", np.bitwise_and, integer_only=True),
    ReduceOp("MPI_BOR", np.bitwise_or, integer_only=True),
    ReduceOp("MPI_BXOR", np.bitwise_xor, integer_only=True),
]


def make_op_space(
    extra_ops: "tuple[ReduceOp, ...] | list[ReduceOp]" = (),
) -> tuple[HandleSpace[ReduceOp], dict[str, int]]:
    """Build a fresh op handle space; returns it plus a name→handle map.

    ``extra_ops`` are registered *after* the predefined ops, so the
    predefined handle layout (and hence which handles are a single bit
    flip apart) is identical with or without them.  The conformance
    harness uses this to add non-commutative test ops.
    """
    space: HandleSpace[ReduceOp] = HandleSpace("op", base=0x7F4B_0000_0000)
    by_name: dict[str, int] = {}
    for op in _PREDEFINED:
        by_name[op.name] = space.register(op)
    for op in extra_ops:
        if op.name in by_name:
            raise ValueError(f"duplicate op name {op.name!r}")
        by_name[op.name] = space.register(op)
    return space, by_name
