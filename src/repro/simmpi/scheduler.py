"""Cooperative round-robin scheduler with message matching.

The scheduler advances one fiber at a time in deterministic rank order,
matches :class:`~repro.simmpi.fiber.Send`/:class:`~repro.simmpi.fiber.Recv`
syscalls on ``(context_id, src, dst, tag)``, detects deadlock (every live
fiber blocked on a receive that can never be satisfied), and enforces a
global event budget so that runaway loops terminate deterministically.

There is no wall-clock anywhere: the same program with the same injected
fault always produces the same trace, which is what makes fault-injection
campaigns reproducible.

When a :class:`~repro.obs.events.Tracer` is attached, the scheduler emits
``send``/``recv``/``match``/``rank_blocked`` events; when a run hangs it
attaches a structured forensic snapshot (who waits on what, fiber
states, unconsumed mailbox keys, live communicators) to the raised
exception so :mod:`repro.obs.forensics` can build the wait-for graph
after the runtime is gone.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .errors import (
    DeadlockError,
    FiberCrashed,
    SchedulerInterrupt,
    SimMPIError,
    StepBudgetExceeded,
)
from .fiber import Fiber, FiberState, Progress, Recv, Send

#: Default event budget per run.  Fault-free workloads in this repository
#: use well under 10% of this; a corrupted loop bound blows through it.
DEFAULT_STEP_BUDGET = 2_000_000

MatchKey = tuple[int, int, int, int]

#: Zero-argument callable returning ``context_id -> (name, group)`` for
#: every live communicator (see ``CommFactory.context_map``).
CommLookup = Callable[[], dict[int, tuple[str, tuple[int, ...]]]]


class DeliveryTap:
    """Delivery-layer interception point for wire-fault injection.

    A tap sees every message *between* the send syscall and its
    delivery (waiter wakeup or mailbox append) and decides what is
    actually delivered — without touching application code, which is
    what makes message drop/duplication/reorder/corruption a property
    of the simulated network rather than of the workload.

    ``on_send`` returns ``None`` for normal delivery, or a list of
    payloads replacing the original: ``[]`` drops the message,
    ``[p, p]`` duplicates it, ``[p']`` corrupts it, and a tap may hold
    a payload back and release it bundled with a later send on the
    same match key (reorder).  ``pending_steps`` is drained into the
    scheduler's event counter before the next scheduling decision —
    the stall model: a stalled rank charges the global deadline budget
    exactly as runaway progress would, so stall detection rides the
    existing ``StepBudgetExceeded`` machinery.
    """

    pending_steps: int = 0

    def on_send(self, sender: int, call: "Send") -> "list[bytes] | None":
        """Intercept one send from world rank ``sender``; ``None`` =
        deliver the original payload unchanged."""
        return None


class Scheduler:
    """Runs a set of rank fibers to completion.

    Parameters
    ----------
    fibers:
        One fiber per rank, indexed by world rank.
    step_budget:
        Maximum number of syscalls (weighted) before the run is declared
        hung.
    tracer:
        Optional event tracer; ``None`` keeps the hot path untraced.
    comm_lookup:
        Optional live-communicator lookup used to annotate hang
        forensics with communicator names and groups.
    recorder:
        Optional append-only sink (anything with ``append``) receiving
        one compact tuple per scheduling decision — every syscall
        dispatch, block, and message match, in execution order.  This is
        the deterministic replay log (see :mod:`repro.verify.replay`):
        two runs of the same program are equivalent iff their recorded
        streams are identical.  ``None`` keeps the hot path unrecorded.
    tap:
        Optional :class:`DeliveryTap` intercepting message delivery for
        wire-fault injection.  ``None`` keeps the hot path untapped.
    """

    def __init__(
        self,
        fibers: list[Fiber],
        step_budget: int = DEFAULT_STEP_BUDGET,
        tracer=None,
        comm_lookup: CommLookup | None = None,
        recorder=None,
        tap: DeliveryTap | None = None,
    ):
        self.fibers = fibers
        self.step_budget = step_budget
        self.tracer = tracer
        self.comm_lookup = comm_lookup
        self.recorder = recorder
        self.tap = tap
        #: World rank of the fiber whose send is being handled — set by
        #: the run loop just before :meth:`_handle_send` so the tap sees
        #: the sender without widening the subclass-interception hook.
        self._sending_rank = -1
        self.steps = 0
        #: Unconsumed messages: match key -> FIFO of payloads.
        self.mailbox: dict[MatchKey, deque[bytes]] = {}
        #: Fibers blocked on a receive: match key -> fiber.
        self.waiting: dict[MatchKey, Fiber] = {}
        #: When set (via :meth:`prime`), the next :meth:`run` starts from
        #: this ready queue instead of all fibers in rank order — the
        #: snapshot fast-forward restore path (:mod:`repro.snapshot`).
        self._resume_ready: list[Fiber] | None = None

    def prime(self, ready: list[Fiber], steps: int = 0) -> None:
        """Arm the next :meth:`run` to resume from a restored mid-run state.

        ``ready`` is the exact ready-queue content (in order); ``steps``
        seeds the event counter so the remaining budget matches the run
        being resumed.  The caller is responsible for restoring
        ``mailbox``/``waiting`` and each fiber's state/``resume_value``
        to a consistent snapshot before calling :meth:`run`.
        """
        self._resume_ready = list(ready)
        self.steps = steps

    # -- syscall handling --------------------------------------------

    def _handle_send(self, call: Send) -> None:
        if self.tap is not None:
            payloads = self.tap.on_send(self._sending_rank, call)
            if payloads is not None:
                for payload in payloads:
                    self._deliver(call, payload)
                return
        self._deliver(call, call.payload)

    def _deliver(self, call: Send, payload: bytes) -> None:
        key = (call.context_id, call.src, call.dst, call.tag)
        waiter = self.waiting.pop(key, None)
        if waiter is not None:
            waiter.resume_value = payload
            waiter.state = FiberState.READY
            waiter.wait_reason = ""
            self._ready.append(waiter)
            if self.recorder is not None:
                self.recorder.append(
                    ("M", waiter.rank, *key, len(payload))
                )
            if self.tracer is not None:
                self.tracer.emit(
                    "match", waiter.rank,
                    ctx=call.context_id, src=call.src, dst=call.dst, tag=call.tag,
                    nbytes=len(payload),
                )
        else:
            # No setdefault: it would build a throwaway deque per send.
            queue = self.mailbox.get(key)
            if queue is None:
                self.mailbox[key] = deque((payload,))
            else:
                queue.append(payload)

    def _handle_recv(self, fiber: Fiber, call: Recv) -> bool:
        """Returns True if the fiber stays ready (message available)."""
        key = (call.context_id, call.src, call.dst, call.tag)
        if self.tracer is not None:
            self.tracer.emit(
                "recv", fiber.rank,
                ctx=call.context_id, src=call.src, dst=call.dst, tag=call.tag,
            )
        queue = self.mailbox.get(key)
        if queue:
            fiber.resume_value = queue.popleft()
            if not queue:
                del self.mailbox[key]
            if self.recorder is not None:
                self.recorder.append(("R", fiber.rank, *key, len(fiber.resume_value)))
            if self.tracer is not None:
                self.tracer.emit(
                    "match", fiber.rank,
                    ctx=call.context_id, src=call.src, dst=call.dst, tag=call.tag,
                    nbytes=len(fiber.resume_value),
                )
            return True
        if key in self.waiting:  # pragma: no cover - defensive
            raise RuntimeError(f"duplicate receive posted for {key}")
        fiber.state = FiberState.BLOCKED
        fiber.wait_reason = (
            f"recv(ctx={call.context_id}, src={call.src}, dst={call.dst}, tag={call.tag:#x})"
        )
        self.waiting[key] = fiber
        if self.recorder is not None:
            self.recorder.append(("B", fiber.rank, *key))
        if self.tracer is not None:
            self.tracer.emit(
                "rank_blocked", fiber.rank,
                ctx=call.context_id, src=call.src, dst=call.dst, tag=call.tag,
            )
        return False

    # -- hang forensics ----------------------------------------------

    def _forensics(self) -> dict[str, Any]:
        """Structured snapshot attached to hang exceptions."""
        return {
            "waiting": {f.rank: key for key, f in self.waiting.items()},
            "fiber_states": {f.rank: f.state.value for f in self.fibers},
            "mailbox": [(key, len(q)) for key, q in sorted(self.mailbox.items())],
            "comms": dict(self.comm_lookup()) if self.comm_lookup is not None else {},
        }

    def _deadlock(self) -> DeadlockError:
        return DeadlockError(
            {f.rank: f.wait_reason for f in self.waiting.values()},
            **self._forensics(),
        )

    # -- main loop ----------------------------------------------------

    def run(self) -> list[Any]:
        """Drive every fiber to completion; return per-rank results.

        Raises the first error any fiber produces (the whole job aborts,
        as with a default MPI error handler), :class:`DeadlockError` when
        no progress is possible, or :class:`StepBudgetExceeded`.

        The loop is the simulator's hottest path: the fiber trampoline
        is inlined (one cached ``gen.send`` call per step), syscalls are
        dispatched on exact class identity (with an ``isinstance``
        fallback for subclassed syscalls), and the step counter lives in
        a local, written back on every exit path.  Send handling still
        goes through :meth:`_handle_send` so subclasses can intercept
        message traffic.
        """
        if self._resume_ready is None:
            ready = self._ready = deque(self.fibers)
        else:
            ready = self._ready = deque(self._resume_ready)
            self._resume_ready = None
        waiting = self.waiting
        tracer = self.tracer
        recorder = self.recorder
        tap = self.tap
        budget = self.step_budget
        handle_send = self._handle_send
        handle_recv = self._handle_recv
        READY = FiberState.READY
        DONE = FiberState.DONE
        FAILED = FiberState.FAILED
        steps = self.steps
        try:
            while ready:
                # Stall faults charge the deadline budget out of band:
                # an injected stall deposits steps on the tap, drained
                # here so the run dies with the same StepBudgetExceeded
                # a runaway loop would raise.
                if tap is not None and tap.pending_steps:
                    steps += tap.pending_steps
                    tap.pending_steps = 0
                    if steps > budget:
                        raise StepBudgetExceeded(budget, **self._forensics())
                fiber = ready.popleft()
                if fiber.state is not READY:
                    continue
                # -- inlined fiber trampoline (see Fiber.step) --------
                value = fiber.resume_value
                fiber.resume_value = None
                try:
                    call = fiber.send(value)
                except StopIteration as stop:  # fiber finished
                    fiber.state = DONE
                    fiber.result = stop.value
                    if recorder is not None:
                        recorder.append(("D", fiber.rank))
                    continue
                except SimMPIError:
                    fiber.state = FAILED
                    raise
                except SchedulerInterrupt:
                    # Deliberate unwind (snapshot engine): not a crash,
                    # propagate unwrapped.
                    raise
                except BaseException as exc:
                    fiber.state = FAILED
                    raise FiberCrashed(fiber.rank, exc) from exc

                cls = call.__class__
                if cls is Send:
                    steps += 1
                    if steps > budget:
                        raise StepBudgetExceeded(budget, **self._forensics())
                    if recorder is not None:
                        recorder.append(
                            ("S", fiber.rank, call.context_id, call.src,
                             call.dst, call.tag, len(call.payload))
                        )
                    if tracer is not None:
                        tracer.emit(
                            "send", fiber.rank,
                            ctx=call.context_id, src=call.src, dst=call.dst,
                            tag=call.tag, nbytes=len(call.payload),
                        )
                    self._sending_rank = fiber.rank
                    handle_send(call)
                    ready.append(fiber)
                elif cls is Recv:
                    steps += 1
                    if steps > budget:
                        raise StepBudgetExceeded(budget, **self._forensics())
                    if handle_recv(fiber, call):
                        ready.append(fiber)
                elif cls is Progress:
                    steps += call.weight
                    if steps > budget:
                        raise StepBudgetExceeded(budget, **self._forensics())
                    if recorder is not None:
                        recorder.append(("P", fiber.rank, call.weight))
                    ready.append(fiber)
                # Subclassed syscalls take the original generic path.
                elif isinstance(call, Send):
                    steps += 1
                    if steps > budget:
                        raise StepBudgetExceeded(budget, **self._forensics())
                    if recorder is not None:
                        recorder.append(
                            ("S", fiber.rank, call.context_id, call.src,
                             call.dst, call.tag, len(call.payload))
                        )
                    if tracer is not None:
                        tracer.emit(
                            "send", fiber.rank,
                            ctx=call.context_id, src=call.src, dst=call.dst,
                            tag=call.tag, nbytes=len(call.payload),
                        )
                    self._sending_rank = fiber.rank
                    handle_send(call)
                    ready.append(fiber)
                elif isinstance(call, Recv):
                    steps += 1
                    if steps > budget:
                        raise StepBudgetExceeded(budget, **self._forensics())
                    if handle_recv(fiber, call):
                        ready.append(fiber)
                elif isinstance(call, Progress):
                    steps += call.weight
                    if steps > budget:
                        raise StepBudgetExceeded(budget, **self._forensics())
                    if recorder is not None:
                        recorder.append(("P", fiber.rank, call.weight))
                    ready.append(fiber)
                else:  # pragma: no cover - defensive
                    raise TypeError(f"fiber {fiber.rank} yielded {call!r}")

                if not ready and waiting:
                    raise self._deadlock()
        finally:
            self.steps = steps

        if waiting:
            raise self._deadlock()
        return [f.result for f in self.fibers]
