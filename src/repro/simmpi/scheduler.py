"""Cooperative round-robin scheduler with message matching.

The scheduler advances one fiber at a time in deterministic rank order,
matches :class:`~repro.simmpi.fiber.Send`/:class:`~repro.simmpi.fiber.Recv`
syscalls on ``(context_id, src, dst, tag)``, detects deadlock (every live
fiber blocked on a receive that can never be satisfied), and enforces a
global event budget so that runaway loops terminate deterministically.

There is no wall-clock anywhere: the same program with the same injected
fault always produces the same trace, which is what makes fault-injection
campaigns reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .errors import DeadlockError, FiberCrashed, SimMPIError, StepBudgetExceeded
from .fiber import Fiber, FiberState, Progress, Recv, Send

#: Default event budget per run.  Fault-free workloads in this repository
#: use well under 10% of this; a corrupted loop bound blows through it.
DEFAULT_STEP_BUDGET = 2_000_000

MatchKey = tuple[int, int, int, int]


class Scheduler:
    """Runs a set of rank fibers to completion.

    Parameters
    ----------
    fibers:
        One fiber per rank, indexed by world rank.
    step_budget:
        Maximum number of syscalls (weighted) before the run is declared
        hung.
    """

    def __init__(self, fibers: list[Fiber], step_budget: int = DEFAULT_STEP_BUDGET):
        self.fibers = fibers
        self.step_budget = step_budget
        self.steps = 0
        #: Unconsumed messages: match key -> FIFO of payloads.
        self.mailbox: dict[MatchKey, deque[bytes]] = {}
        #: Fibers blocked on a receive: match key -> fiber.
        self.waiting: dict[MatchKey, Fiber] = {}

    # -- syscall handling --------------------------------------------

    def _handle_send(self, call: Send) -> None:
        key = (call.context_id, call.src, call.dst, call.tag)
        waiter = self.waiting.pop(key, None)
        if waiter is not None:
            waiter.resume_value = call.payload
            waiter.state = FiberState.READY
            waiter.wait_reason = ""
            self._ready.append(waiter)
        else:
            self.mailbox.setdefault(key, deque()).append(call.payload)

    def _handle_recv(self, fiber: Fiber, call: Recv) -> bool:
        """Returns True if the fiber stays ready (message available)."""
        key = (call.context_id, call.src, call.dst, call.tag)
        queue = self.mailbox.get(key)
        if queue:
            fiber.resume_value = queue.popleft()
            if not queue:
                del self.mailbox[key]
            return True
        if key in self.waiting:  # pragma: no cover - defensive
            raise RuntimeError(f"duplicate receive posted for {key}")
        fiber.state = FiberState.BLOCKED
        fiber.wait_reason = (
            f"recv(ctx={call.context_id}, src={call.src}, dst={call.dst}, tag={call.tag:#x})"
        )
        self.waiting[key] = fiber
        return False

    # -- main loop ----------------------------------------------------

    def run(self) -> list[Any]:
        """Drive every fiber to completion; return per-rank results.

        Raises the first error any fiber produces (the whole job aborts,
        as with a default MPI error handler), :class:`DeadlockError` when
        no progress is possible, or :class:`StepBudgetExceeded`.
        """
        self._ready: deque[Fiber] = deque(self.fibers)
        while self._ready:
            fiber = self._ready.popleft()
            if fiber.state is not FiberState.READY:
                continue
            try:
                call = fiber.step()
            except SimMPIError:
                fiber.state = FiberState.FAILED
                raise
            except BaseException as exc:
                fiber.state = FiberState.FAILED
                raise FiberCrashed(fiber.rank, exc) from exc

            if call is None:  # fiber finished
                continue

            self.steps += call.weight if isinstance(call, Progress) else 1
            if self.steps > self.step_budget:
                raise StepBudgetExceeded(self.step_budget)

            if isinstance(call, Send):
                self._handle_send(call)
                self._ready.append(fiber)
            elif isinstance(call, Recv):
                if self._handle_recv(fiber, call):
                    self._ready.append(fiber)
            elif isinstance(call, Progress):
                self._ready.append(fiber)
            else:  # pragma: no cover - defensive
                raise TypeError(f"fiber {fiber.rank} yielded {call!r}")

            if not self._ready and self.waiting:
                raise DeadlockError({f.rank: f.wait_reason for f in self.waiting.values()})

        if self.waiting:
            raise DeadlockError({f.rank: f.wait_reason for f in self.waiting.values()})
        return [f.result for f in self.fibers]
