"""Cooperative round-robin scheduler with message matching.

The scheduler advances one fiber at a time in deterministic rank order,
matches :class:`~repro.simmpi.fiber.Send`/:class:`~repro.simmpi.fiber.Recv`
syscalls on ``(context_id, src, dst, tag)``, detects deadlock (every live
fiber blocked on a receive that can never be satisfied), and enforces a
global event budget so that runaway loops terminate deterministically.

There is no wall-clock anywhere: the same program with the same injected
fault always produces the same trace, which is what makes fault-injection
campaigns reproducible.

When a :class:`~repro.obs.events.Tracer` is attached, the scheduler emits
``send``/``recv``/``match``/``rank_blocked`` events; when a run hangs it
attaches a structured forensic snapshot (who waits on what, fiber
states, unconsumed mailbox keys, live communicators) to the raised
exception so :mod:`repro.obs.forensics` can build the wait-for graph
after the runtime is gone.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .errors import DeadlockError, FiberCrashed, SimMPIError, StepBudgetExceeded
from .fiber import Fiber, FiberState, Progress, Recv, Send

#: Default event budget per run.  Fault-free workloads in this repository
#: use well under 10% of this; a corrupted loop bound blows through it.
DEFAULT_STEP_BUDGET = 2_000_000

MatchKey = tuple[int, int, int, int]

#: Zero-argument callable returning ``context_id -> (name, group)`` for
#: every live communicator (see ``CommFactory.context_map``).
CommLookup = Callable[[], dict[int, tuple[str, tuple[int, ...]]]]


class Scheduler:
    """Runs a set of rank fibers to completion.

    Parameters
    ----------
    fibers:
        One fiber per rank, indexed by world rank.
    step_budget:
        Maximum number of syscalls (weighted) before the run is declared
        hung.
    tracer:
        Optional event tracer; ``None`` keeps the hot path untraced.
    comm_lookup:
        Optional live-communicator lookup used to annotate hang
        forensics with communicator names and groups.
    """

    def __init__(
        self,
        fibers: list[Fiber],
        step_budget: int = DEFAULT_STEP_BUDGET,
        tracer=None,
        comm_lookup: CommLookup | None = None,
    ):
        self.fibers = fibers
        self.step_budget = step_budget
        self.tracer = tracer
        self.comm_lookup = comm_lookup
        self.steps = 0
        #: Unconsumed messages: match key -> FIFO of payloads.
        self.mailbox: dict[MatchKey, deque[bytes]] = {}
        #: Fibers blocked on a receive: match key -> fiber.
        self.waiting: dict[MatchKey, Fiber] = {}

    # -- syscall handling --------------------------------------------

    def _handle_send(self, call: Send) -> None:
        key = (call.context_id, call.src, call.dst, call.tag)
        waiter = self.waiting.pop(key, None)
        if waiter is not None:
            waiter.resume_value = call.payload
            waiter.state = FiberState.READY
            waiter.wait_reason = ""
            self._ready.append(waiter)
            if self.tracer is not None:
                self.tracer.emit(
                    "match", waiter.rank,
                    ctx=call.context_id, src=call.src, dst=call.dst, tag=call.tag,
                    nbytes=len(call.payload),
                )
        else:
            self.mailbox.setdefault(key, deque()).append(call.payload)

    def _handle_recv(self, fiber: Fiber, call: Recv) -> bool:
        """Returns True if the fiber stays ready (message available)."""
        key = (call.context_id, call.src, call.dst, call.tag)
        if self.tracer is not None:
            self.tracer.emit(
                "recv", fiber.rank,
                ctx=call.context_id, src=call.src, dst=call.dst, tag=call.tag,
            )
        queue = self.mailbox.get(key)
        if queue:
            fiber.resume_value = queue.popleft()
            if not queue:
                del self.mailbox[key]
            if self.tracer is not None:
                self.tracer.emit(
                    "match", fiber.rank,
                    ctx=call.context_id, src=call.src, dst=call.dst, tag=call.tag,
                    nbytes=len(fiber.resume_value),
                )
            return True
        if key in self.waiting:  # pragma: no cover - defensive
            raise RuntimeError(f"duplicate receive posted for {key}")
        fiber.state = FiberState.BLOCKED
        fiber.wait_reason = (
            f"recv(ctx={call.context_id}, src={call.src}, dst={call.dst}, tag={call.tag:#x})"
        )
        self.waiting[key] = fiber
        if self.tracer is not None:
            self.tracer.emit(
                "rank_blocked", fiber.rank,
                ctx=call.context_id, src=call.src, dst=call.dst, tag=call.tag,
            )
        return False

    # -- hang forensics ----------------------------------------------

    def _forensics(self) -> dict[str, Any]:
        """Structured snapshot attached to hang exceptions."""
        return {
            "waiting": {f.rank: key for key, f in self.waiting.items()},
            "fiber_states": {f.rank: f.state.value for f in self.fibers},
            "mailbox": [(key, len(q)) for key, q in sorted(self.mailbox.items())],
            "comms": dict(self.comm_lookup()) if self.comm_lookup is not None else {},
        }

    def _deadlock(self) -> DeadlockError:
        return DeadlockError(
            {f.rank: f.wait_reason for f in self.waiting.values()},
            **self._forensics(),
        )

    # -- main loop ----------------------------------------------------

    def run(self) -> list[Any]:
        """Drive every fiber to completion; return per-rank results.

        Raises the first error any fiber produces (the whole job aborts,
        as with a default MPI error handler), :class:`DeadlockError` when
        no progress is possible, or :class:`StepBudgetExceeded`.
        """
        self._ready: deque[Fiber] = deque(self.fibers)
        while self._ready:
            fiber = self._ready.popleft()
            if fiber.state is not FiberState.READY:
                continue
            try:
                call = fiber.step()
            except SimMPIError:
                fiber.state = FiberState.FAILED
                raise
            except BaseException as exc:
                fiber.state = FiberState.FAILED
                raise FiberCrashed(fiber.rank, exc) from exc

            if call is None:  # fiber finished
                continue

            self.steps += call.weight if isinstance(call, Progress) else 1
            if self.steps > self.step_budget:
                raise StepBudgetExceeded(self.step_budget, **self._forensics())

            if isinstance(call, Send):
                if self.tracer is not None:
                    self.tracer.emit(
                        "send", fiber.rank,
                        ctx=call.context_id, src=call.src, dst=call.dst,
                        tag=call.tag, nbytes=len(call.payload),
                    )
                self._handle_send(call)
                self._ready.append(fiber)
            elif isinstance(call, Recv):
                if self._handle_recv(fiber, call):
                    self._ready.append(fiber)
            elif isinstance(call, Progress):
                self._ready.append(fiber)
            else:  # pragma: no cover - defensive
                raise TypeError(f"fiber {fiber.rank} yielded {call!r}")

            if not self._ready and self.waiting:
                raise self._deadlock()

        if self.waiting:
            raise self._deadlock()
        return [f.result for f in self.fibers]
