"""MPI datatype registry for the simulated runtime.

Only the basic C datatypes that the paper's workloads use are modelled.
Each datatype carries its byte size and the numpy dtype used to interpret
message payloads during reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .handles import HandleSpace


@dataclass(frozen=True)
class Datatype:
    """A basic MPI datatype.

    Attributes
    ----------
    name:
        The MPI name, e.g. ``"MPI_DOUBLE"``.
    np_dtype:
        The numpy dtype used to reinterpret raw message bytes.
    """

    name: str
    np_dtype: np.dtype

    @property
    def size(self) -> int:
        """Extent of one element in bytes."""
        return self.np_dtype.itemsize

    @property
    def is_integer(self) -> bool:
        return np.issubdtype(self.np_dtype, np.integer)

    @property
    def is_float(self) -> bool:
        return np.issubdtype(self.np_dtype, np.floating) or np.issubdtype(
            self.np_dtype, np.complexfloating
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Datatype({self.name})"


#: The basic datatypes the workloads use, in registration order.  The
#: order determines handle addresses, hence which pairs of datatypes are
#: a single bit flip apart.
_BASIC_TYPES: list[tuple[str, str]] = [
    ("MPI_CHAR", "i1"),
    ("MPI_INT", "i4"),
    ("MPI_LONG", "i8"),
    ("MPI_FLOAT", "f4"),
    ("MPI_DOUBLE", "f8"),
    ("MPI_UNSIGNED", "u4"),
    ("MPI_UNSIGNED_LONG", "u8"),
    ("MPI_COMPLEX", "c8"),
    ("MPI_DOUBLE_COMPLEX", "c16"),
    ("MPI_BYTE", "u1"),
]


def make_datatype_space() -> tuple[HandleSpace[Datatype], dict[str, int]]:
    """Build a fresh datatype handle space.

    Returns the space and a ``name -> handle`` map.  Every runtime
    instance gets its own space so tests cannot leak state.
    """
    space: HandleSpace[Datatype] = HandleSpace("type")
    by_name: dict[str, int] = {}
    for name, np_name in _BASIC_TYPES:
        handle = space.register(Datatype(name, np.dtype(np_name)))
        by_name[name] = handle
    return space, by_name
