"""Rank fibers and the syscall protocol.

Each MPI rank is a *fiber*: a Python generator that yields
:class:`Syscall` objects whenever it needs the runtime (to send or
receive a message, or just to report compute progress).  Application code
is written as generator functions and composed with ``yield from``, which
keeps the full logical call stack on the real interpreter stack — that is
what lets the profiler capture genuine backtraces at collective call
sites, exactly like the paper's use of ``backtrace()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Generator


class Syscall:
    """Base class for everything a fiber may yield to the scheduler.

    Syscalls are created once per message on the simulator's hottest
    path, so they are slotted plain-``__init__`` dataclasses (a frozen
    dataclass pays an ``object.__setattr__`` per field on every
    construction).  Treat instances as immutable: they are shared
    between the yielding fiber and the scheduler's mailbox.
    """

    __slots__ = ()


@dataclass(slots=True)
class Send(Syscall):
    """Buffered (non-blocking-complete) message send.

    Matching key is ``(context_id, src, dst, tag)``; ``src``/``dst`` are
    comm-local ranks within the context.
    """

    context_id: int
    src: int
    dst: int
    tag: int
    payload: bytes


@dataclass(slots=True)
class Recv(Syscall):
    """Blocking receive; the scheduler resumes the fiber with the payload."""

    context_id: int
    src: int
    dst: int
    tag: int


@dataclass(slots=True)
class Progress(Syscall):
    """A cooperative tick emitted from compute loops.

    ``weight`` counts against the run's step budget, so a runaway compute
    loop (e.g. a corrupted iteration bound) is eventually classified as
    ``INF_LOOP`` instead of hanging the harness.
    """

    weight: int = 1


class FiberState(Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class Fiber:
    """One rank's execution context."""

    __slots__ = ("rank", "gen", "send", "state", "result", "error", "resume_value", "wait_reason")

    def __init__(self, rank: int, gen: Generator[Syscall, Any, Any]):
        self.rank = rank
        self.gen = gen
        #: The generator's bound ``send`` — cached so the scheduler's
        #: trampoline advances the fiber without a per-step attribute
        #: and descriptor lookup chain.
        self.send = gen.send
        self.state = FiberState.READY
        self.result: Any = None
        self.error: BaseException | None = None
        self.resume_value: Any = None
        #: Human-readable description of what the fiber is blocked on,
        #: used in deadlock reports.
        self.wait_reason: str = ""

    def step(self) -> Syscall | None:
        """Advance the fiber to its next syscall.

        Returns the yielded syscall, or ``None`` when the fiber
        completed (its return value is stored in ``result``).  Any
        exception escaping the generator is re-raised to the scheduler.
        """
        value, self.resume_value = self.resume_value, None
        try:
            return self.send(value)
        except StopIteration as stop:
            self.state = FiberState.DONE
            self.result = stop.value
            return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fiber(rank={self.rank}, state={self.state.value})"
