"""Rank fibers and the syscall protocol.

Each MPI rank is a *fiber*: a Python generator that yields
:class:`Syscall` objects whenever it needs the runtime (to send or
receive a message, or just to report compute progress).  Application code
is written as generator functions and composed with ``yield from``, which
keeps the full logical call stack on the real interpreter stack — that is
what lets the profiler capture genuine backtraces at collective call
sites, exactly like the paper's use of ``backtrace()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Generator


class Syscall:
    """Base class for everything a fiber may yield to the scheduler."""

    __slots__ = ()


@dataclass(frozen=True)
class Send(Syscall):
    """Buffered (non-blocking-complete) message send.

    Matching key is ``(context_id, src, dst, tag)``; ``src``/``dst`` are
    comm-local ranks within the context.
    """

    context_id: int
    src: int
    dst: int
    tag: int
    payload: bytes


@dataclass(frozen=True)
class Recv(Syscall):
    """Blocking receive; the scheduler resumes the fiber with the payload."""

    context_id: int
    src: int
    dst: int
    tag: int


@dataclass(frozen=True)
class Progress(Syscall):
    """A cooperative tick emitted from compute loops.

    ``weight`` counts against the run's step budget, so a runaway compute
    loop (e.g. a corrupted iteration bound) is eventually classified as
    ``INF_LOOP`` instead of hanging the harness.
    """

    weight: int = 1


class FiberState(Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class Fiber:
    """One rank's execution context."""

    __slots__ = ("rank", "gen", "state", "result", "error", "resume_value", "wait_reason")

    def __init__(self, rank: int, gen: Generator[Syscall, Any, Any]):
        self.rank = rank
        self.gen = gen
        self.state = FiberState.READY
        self.result: Any = None
        self.error: BaseException | None = None
        self.resume_value: Any = None
        #: Human-readable description of what the fiber is blocked on,
        #: used in deadlock reports.
        self.wait_reason: str = ""

    def step(self) -> Syscall | None:
        """Advance the fiber to its next syscall.

        Returns the yielded syscall, or ``None`` when the fiber
        completed (its return value is stored in ``result``).  Any
        exception escaping the generator is re-raised to the scheduler.
        """
        value, self.resume_value = self.resume_value, None
        try:
            return self.gen.send(value)
        except StopIteration as stop:
            self.state = FiberState.DONE
            self.result = stop.value
            return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fiber(rank={self.rank}, state={self.state.value})"
