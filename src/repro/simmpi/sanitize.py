"""Opt-in runtime sanitizers for the simulated MPI stack.

The simulator is deliberately permissive at run time — heap smashes
succeed, short receives are legal, unconsumed messages vanish at job
teardown — because that permissiveness *is* the fault model.  The
sanitizer layer is the opposite stance for fault-free verification
runs: every condition that is silently tolerated on the injection path
becomes a recorded violation, so a refactor of the scheduler, memory
arena, or a collective algorithm cannot silently change semantics.

Checks (enabled with ``SimMPI(sanitize=True)`` / ``run_app(sanitize=...)``):

* ``unmatched_message`` — a send was never received by job end
  (scheduler teardown; the clean analogue of the mailbox residue that
  hang forensics report);
* ``request_leak`` — a nonblocking request was never completed with
  ``Wait``/``Waitall`` (context teardown);
* ``buffer_overlap`` — a read or write stayed inside the arena but
  crossed from one allocation into another (the heap-smash path);
* ``oob_access`` — tripwire fired just before a simulated segfault, so
  the evidence survives even though the access raises;
* ``short_recv`` — a collective's receive payload was smaller than the
  posted buffer (count mismatch between sender and receiver);
* ``size_indivisible`` — a received payload's byte length is not a
  multiple of the receiver's element size (datatype mismatch).

Violations are recorded on the :class:`Sanitizer` and, when a tracer is
attached, mirrored as ``sanitize_violation`` events.  ``strict=True``
additionally raises :class:`SanitizerViolation` at the first finding —
deliberately *not* a :class:`~repro.simmpi.errors.SimMPIError`, so a
strict sanitizer failure can never be misclassified as one of the
paper's application responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Every violation kind the sanitizer layer can record.
VIOLATION_KINDS = (
    "unmatched_message",
    "request_leak",
    "buffer_overlap",
    "oob_access",
    "short_recv",
    "size_indivisible",
)


class SanitizerViolation(AssertionError):
    """Raised in strict mode at the first recorded violation."""


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding.

    ``data`` carries kind-specific evidence (addresses, match keys,
    byte counts) with JSON-safe values only.
    """

    kind: str
    rank: int
    data: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        body = " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        return f"{self.kind} on rank {self.rank}: {body}"


class Sanitizer:
    """Collects violations from the scheduler, memory, and contexts.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.obs.events.Tracer`; every violation is
        mirrored as a ``sanitize_violation`` event.
    strict:
        Raise :class:`SanitizerViolation` at the first finding instead
        of accumulating.
    """

    __slots__ = ("tracer", "strict", "violations")

    def __init__(self, tracer=None, strict: bool = False):
        self.tracer = tracer
        self.strict = strict
        self.violations: list[Violation] = []

    def record(self, kind: str, rank: int, **data: Any) -> None:
        v = Violation(kind, rank, data)
        self.violations.append(v)
        if self.tracer is not None:
            self.tracer.emit("sanitize_violation", rank, kind=kind, **data)
        if self.strict:
            raise SanitizerViolation(v.describe())

    def __len__(self) -> int:
        return len(self.violations)

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.kind] = counts.get(v.kind, 0) + 1
        return counts

    def describe(self) -> str:
        if not self.violations:
            return "sanitizer: clean"
        lines = [f"sanitizer: {len(self.violations)} violation(s)"]
        lines += [f"  {v.describe()}" for v in self.violations]
        return "\n".join(lines)

    # -- teardown checks (called by SimMPI.run after a clean finish) --

    def check_scheduler(self, scheduler) -> None:
        """Flag messages still queued in the match space at job end."""
        for key, queue in sorted(scheduler.mailbox.items()):
            ctx, src, dst, tag = key
            self.record(
                "unmatched_message", src,
                ctx=ctx, src=src, dst=dst, tag=tag, queued=len(queue),
            )

    def check_contexts(self, contexts) -> None:
        """Flag nonblocking requests never completed with Wait."""
        for context in contexts:
            for req in getattr(context, "_live_requests", ()):
                if not req.complete:
                    p = req._pending
                    self.record(
                        "request_leak", context.rank,
                        kind_=req.kind,
                        source=p.get("source"), tag=p.get("tag"),
                    )
