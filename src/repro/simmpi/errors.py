"""Exception taxonomy for the simulated MPI runtime.

The hierarchy mirrors the failure surface FastFIT observes on a real
machine (Table I of the paper):

* :class:`MPIError` — the MPI library detects a bad argument or an
  internal protocol violation and aborts the job (``MPI_ERR``).
* :class:`SegmentationFault` — a simulated memory access outside the
  rank's mapped arena (``SEG_FAULT``).
* :class:`AppError` — the application's own error-handling code detects
  the problem and aborts (``APP_DETECTED``).
* :class:`DeadlockError` / :class:`StepBudgetExceeded` — the run never
  terminates and is killed by the harness (``INF_LOOP``).

``SUCCESS`` and ``WRONG_ANS`` are not exceptions: they are decided by the
injection runner after a run completes, by comparing against a golden run.
"""

from __future__ import annotations


class SimMPIError(Exception):
    """Base class for every error raised by the simulated runtime."""


class SchedulerInterrupt(BaseException):
    """Deliberate control-flow escape out of a running scheduler.

    Derives from :class:`BaseException` so application-level handlers
    never swallow it, and the scheduler's fiber trampoline re-raises it
    unwrapped (a fiber raising it is *not* a crash).  Used by the
    snapshot engine (:mod:`repro.snapshot`) to abandon a parked parent
    job after every forked test has been served.
    """


class MPIError(SimMPIError):
    """The simulated MPI library detected an error (``MPI_ERR``).

    Parameters
    ----------
    errclass:
        A short machine-readable error class, e.g. ``"MPI_ERR_COUNT"``.
    message:
        Human-readable description.
    rank:
        The rank on which the error was raised, if known.
    """

    def __init__(self, errclass: str, message: str = "", rank: int | None = None):
        self.errclass = errclass
        self.rank = rank
        super().__init__(f"{errclass}: {message}" + (f" (rank {rank})" if rank is not None else ""))


class SegmentationFault(SimMPIError):
    """A simulated out-of-arena memory access (``SEG_FAULT``)."""

    def __init__(self, addr: int, nbytes: int, rank: int | None = None):
        self.addr = addr
        self.nbytes = nbytes
        self.rank = rank
        super().__init__(
            f"segmentation fault: access [{addr:#x}, {addr + nbytes:#x})"
            + (f" on rank {rank}" if rank is not None else "")
        )


class AppError(SimMPIError):
    """The application's own error handling detected a fault (``APP_DETECTED``)."""

    def __init__(self, message: str = "", rank: int | None = None):
        self.rank = rank
        super().__init__(message + (f" (rank {rank})" if rank is not None else ""))


class DeadlockError(SimMPIError):
    """No fiber can make progress; the job would hang forever (``INF_LOOP``).

    Besides the human-readable ``blocked`` map, the scheduler attaches
    the structured forensic data that
    :func:`repro.obs.forensics.build_wait_for_graph` consumes:

    * ``waiting`` — blocked world rank → posted match key
      ``(context_id, src, dst, tag)``;
    * ``fiber_states`` — world rank → fiber state name for *every* rank;
    * ``mailbox`` — list of ``(match key, queued message count)`` for
      messages sent but never received (near-miss evidence);
    * ``comms`` — context id → ``(name, group)`` of each live
      communicator at abort time.
    """

    def __init__(
        self,
        blocked: dict[int, str] | None = None,
        waiting: dict[int, tuple[int, int, int, int]] | None = None,
        fiber_states: dict[int, str] | None = None,
        mailbox: list[tuple[tuple[int, int, int, int], int]] | None = None,
        comms: dict[int, tuple[str, tuple[int, ...]]] | None = None,
    ):
        self.blocked = dict(blocked or {})
        self.waiting = dict(waiting or {})
        self.fiber_states = dict(fiber_states or {})
        self.mailbox = list(mailbox or ())
        self.comms = dict(comms or {})
        detail = "; ".join(f"rank {r}: {w}" for r, w in sorted(self.blocked.items()))
        super().__init__(f"deadlock detected ({detail})" if detail else "deadlock detected")


class StepBudgetExceeded(SimMPIError):
    """The run exceeded its event budget; treated as a hang (``INF_LOOP``).

    Carries the same optional forensic attachments as
    :class:`DeadlockError` (ranks still blocked when the budget ran
    out often explain a livelock's shape).
    """

    def __init__(
        self,
        budget: int,
        waiting: dict[int, tuple[int, int, int, int]] | None = None,
        fiber_states: dict[int, str] | None = None,
        mailbox: list[tuple[tuple[int, int, int, int], int]] | None = None,
        comms: dict[int, tuple[str, tuple[int, ...]]] | None = None,
    ):
        self.budget = budget
        self.waiting = dict(waiting or {})
        self.fiber_states = dict(fiber_states or {})
        self.mailbox = list(mailbox or ())
        self.comms = dict(comms or {})
        super().__init__(f"step budget of {budget} events exceeded")


class FiberCrashed(SimMPIError):
    """Wrapper carrying an arbitrary exception out of a rank fiber.

    A Python-level exception that is neither an :class:`MPIError`, a
    :class:`SegmentationFault`, nor an :class:`AppError` escaped the
    application code of one rank.  On a real system such a crash is
    usually surfaced as a signal (classified ``SEG_FAULT``) — the
    injection runner performs that mapping.
    """

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(f"rank {rank} crashed: {type(original).__name__}: {original}")
