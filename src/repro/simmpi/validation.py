"""MPI argument validation — the ``MPI_ERR`` surface.

Validation mirrors what a real implementation checks on entry: handle
resolution (which, with pointer-like handles, may itself segfault — see
:mod:`repro.simmpi.handles`), count signs, root ranges, and membership.
Anything that passes validation but is still wrong (an oversized count, a
mismatched root) fails later, inside the algorithms, exactly as on a
real machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from .comm import Communicator
from .datatypes import Datatype
from .errors import MPIError
from .ops import ReduceOp

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import SimMPI


def _as_int(value: Any) -> int:
    """Coerce counts/roots to Python ints (numpy scalars flow in from
    application code and from bit-flipped parameter values)."""
    return int(value)


def check_count(count: Any, *, rank: int | None = None, what: str = "count") -> int:
    count = _as_int(count)
    if count < 0:
        raise MPIError("MPI_ERR_COUNT", f"negative {what}: {count}", rank=rank)
    return count


def check_counts_array(values: Sequence[int], *, rank: int | None = None, what: str = "counts") -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if (arr < 0).any():
        bad = int(arr[arr < 0][0])
        raise MPIError("MPI_ERR_COUNT", f"negative entry in {what}: {bad}", rank=rank)
    return arr


def resolve_datatype(runtime: "SimMPI", handle: Any, *, rank: int | None = None) -> Datatype:
    return runtime.type_space.resolve(_as_int(handle), rank=rank)


def resolve_op(runtime: "SimMPI", handle: Any, *, rank: int | None = None) -> ReduceOp:
    return runtime.op_space.resolve(_as_int(handle), rank=rank)


def resolve_comm(runtime: "SimMPI", handle: Any, *, rank: int | None = None) -> Communicator:
    comm = runtime.comm_factory.space.resolve(_as_int(handle), rank=rank)
    if rank is not None and not comm.contains(rank):
        # A corrupted handle aliased a live communicator this rank is not
        # a member of; real MPI reports an invalid communicator.
        raise MPIError(
            "MPI_ERR_COMM",
            f"rank {rank} is not a member of {comm.name}",
            rank=rank,
        )
    return comm


def check_root(root: Any, comm: Communicator, *, rank: int | None = None) -> int:
    root = _as_int(root)
    if not 0 <= root < comm.size:
        raise MPIError(
            "MPI_ERR_ROOT", f"root {root} out of range for size {comm.size}", rank=rank
        )
    return root


def check_addr(addr: Any, *, rank: int | None = None, what: str = "buffer") -> int:
    addr = _as_int(addr)
    if addr < 0:
        raise MPIError("MPI_ERR_BUFFER", f"negative {what} address", rank=rank)
    return addr
