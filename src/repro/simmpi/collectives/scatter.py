"""Linear scatter driver (root distributes one block to every rank)."""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from .env import CollEnv


def scatter(
    env: CollEnv,
    sendaddr: int,
    sendcount: int,
    recvaddr: int,
    recvcount: int,
    dtype: Datatype,
    root: int,
) -> Generator:
    """Scatter rank-major blocks of ``sendcount`` elements from the root.

    ``sendcount``/``sendaddr`` are significant only at the root, as in
    MPI.
    """
    n = env.size
    recvbytes = recvcount * dtype.size
    root = root % n

    if env.me == root:
        blockbytes = sendcount * dtype.size
        for r in range(n):
            block = env.memory.read(sendaddr + r * blockbytes, blockbytes)
            if r == env.me:
                env.check_truncate(block, recvbytes, dtype.size)
                env.memory.write(recvaddr, block)
            else:
                yield from env.send(r, 0, block)
    else:
        payload = yield from env.recv(root, 0)
        env.check_truncate(payload, recvbytes, dtype.size)
        env.memory.write(recvaddr, payload)
