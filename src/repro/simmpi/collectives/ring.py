"""Ring and pairwise-exchange schedules (allgather, alltoall)."""

from __future__ import annotations


def ring_allgather_steps(rank: int, n: int) -> list[tuple[int, int, int, int, int]]:
    """Schedule for the ring allgather.

    Returns ordered ``(send_to, recv_from, send_block, recv_block, step)``
    tuples.  At step ``s`` each rank forwards block ``(rank - s) mod n``
    to its right neighbour and receives block ``(rank - s - 1) mod n``
    from its left neighbour; after ``n - 1`` steps every rank holds all
    blocks.
    """
    right = (rank + 1) % n
    left = (rank - 1) % n
    return [
        (right, left, (rank - s) % n, (rank - s - 1) % n, s)
        for s in range(n - 1)
    ]


def pairwise_alltoall_steps(rank: int, n: int) -> list[tuple[int, int, int]]:
    """Schedule for the pairwise-exchange alltoall.

    Returns ordered ``(dst, src, step)`` tuples: at step ``s`` the rank
    sends its block for ``(rank + s) mod n`` and receives the block from
    ``(rank - s) mod n``.  The own-block copy (step 0) is handled locally
    by the driver.
    """
    return [((rank + s) % n, (rank - s) % n, s) for s in range(1, n)]
