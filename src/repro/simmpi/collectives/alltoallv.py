"""Pairwise-exchange alltoallv driver (per-peer counts and displacements)."""

from __future__ import annotations

from typing import Generator, Sequence

from ..datatypes import Datatype
from .env import CollEnv
from .ring import pairwise_alltoall_steps


def alltoallv(
    env: CollEnv,
    sendaddr: int,
    sendcounts: Sequence[int],
    sdispls: Sequence[int],
    recvaddr: int,
    recvcounts: Sequence[int],
    rdispls: Sequence[int],
    dtype: Datatype,
) -> Generator:
    """Exchange variable-sized blocks.

    Counts and displacements are in *elements*, as in MPI.  Displacements
    are read from the caller's (possibly corrupted) arrays, so a flipped
    displacement walks the read or write far from the buffer — usually a
    heap smash, sometimes a segfault.
    """
    n = env.size
    es = dtype.size
    me = env.me

    own = env.memory.read(sendaddr + int(sdispls[me]) * es, int(sendcounts[me]) * es)
    env.check_truncate(own, int(recvcounts[me]) * es, es)
    env.memory.write(recvaddr + int(rdispls[me]) * es, own)

    for dst, src, step in pairwise_alltoall_steps(me, n):
        data = env.memory.read(sendaddr + int(sdispls[dst]) * es, int(sendcounts[dst]) * es)
        yield from env.send(dst, step, data)
        payload = yield from env.recv(src, step)
        env.check_truncate(payload, int(recvcounts[src]) * es, es)
        env.memory.write(recvaddr + int(rdispls[src]) * es, payload)
