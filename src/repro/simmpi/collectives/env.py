"""Execution environment shared by all collective algorithm drivers.

A :class:`CollEnv` binds one rank's view of one collective invocation:
the communicator *as that rank resolved it* (possibly corrupted), the
rank's memory, and the tag base derived from the rank's local collective
sequence number.  Algorithms address peers by comm-local rank and
exchange raw byte payloads.

Because every rank derives its schedule and tags from its own view,
parameter corruption produces the same failure modes as on a real
machine: mismatched roots or communicators leave receives unmatched
(deadlock → ``INF_LOOP``), and oversized counts walk off the arena
(``SEG_FAULT``).
"""

from __future__ import annotations

from typing import Generator

from ..comm import Communicator
from ..errors import MPIError
from ..fiber import Recv, Send
from ..memory import Memory

#: Number of tag bits reserved for the step index within one collective.
STEP_BITS = 10
MAX_STEPS = 1 << STEP_BITS


class CollEnv:
    """One rank's messaging context for a single collective invocation."""

    __slots__ = ("comm", "me", "seq", "memory", "rank")

    def __init__(self, comm: Communicator, my_world_rank: int, seq: int, memory: Memory):
        self.comm = comm
        self.rank = my_world_rank
        self.me = comm.rank_of(my_world_rank)
        self.seq = seq
        self.memory = memory

    @property
    def size(self) -> int:
        return self.comm.size

    def _tag(self, step: int) -> int:
        if not 0 <= step < MAX_STEPS:  # pragma: no cover - defensive
            raise ValueError(f"step {step} out of tag range")
        return (self.seq << STEP_BITS) | step

    def send(self, dst_local: int, step: int, payload: bytes) -> Generator:
        """Buffered send to comm-local rank ``dst_local``."""
        yield Send(self.comm.context_id, self.me, dst_local % self.size, self._tag(step), payload)

    def recv(self, src_local: int, step: int) -> Generator:
        """Blocking receive from comm-local rank ``src_local``."""
        payload = yield Recv(
            self.comm.context_id, src_local % self.size, self.me, self._tag(step)
        )
        return payload

    def check_truncate(
        self, payload: bytes, expected_nbytes: int, elem_size: int = 0
    ) -> bytes:
        """Raise ``MPI_ERR_TRUNCATE`` when a message overflows the
        receive buffer, as real MPI does; shorter messages are legal.

        With a sanitizer armed, any size disagreement between the two
        sides of a collective transfer is recorded: ``short_recv`` when
        the payload is smaller than the posted buffer (count mismatch),
        and ``size_indivisible`` when, given ``elem_size``, the payload
        is not a whole number of receiver elements (datatype mismatch).
        """
        if len(payload) > expected_nbytes:
            raise MPIError(
                "MPI_ERR_TRUNCATE",
                f"message of {len(payload)} bytes exceeds receive buffer of {expected_nbytes}",
                rank=self.rank,
            )
        sanitizer = self.memory.sanitizer
        if sanitizer is not None:
            if len(payload) < expected_nbytes:
                sanitizer.record(
                    "short_recv", self.rank,
                    got=len(payload), expected=expected_nbytes,
                )
            if elem_size > 1 and len(payload) % elem_size:
                sanitizer.record(
                    "size_indivisible", self.rank,
                    got=len(payload), elem_size=elem_size,
                )
        return payload
