"""MPI_Reduce_scatter_block: elementwise reduction + block scatter.

Implemented as one binomial reduction per block, each rooted at the
block's owner, with disjoint tag-step windows.  No temporary buffers —
every byte moved comes from (possibly corrupted) application memory, so
the fault semantics stay faithful.
"""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from ..ops import ReduceOp
from .env import CollEnv
from .reduce import reduce

#: Tag-step window per block-rooted reduction (≥ rounds of a binomial
#: tree at any communicator size this simulator targets).
_STRIDE = 8


def reduce_scatter_block(
    env: CollEnv,
    sendaddr: int,
    recvaddr: int,
    recvcount: int,
    dtype: Datatype,
    op: ReduceOp,
) -> Generator:
    """Reduce ``size × recvcount`` elements; rank r keeps block r.

    ``sendaddr`` holds ``size`` rank-major blocks of ``recvcount``
    elements on every rank (the MPI_Reduce_scatter_block layout).
    """
    blockbytes = recvcount * dtype.size
    for block in range(env.size):
        yield from reduce(
            env,
            sendaddr + block * blockbytes,
            recvaddr,
            recvcount,
            dtype,
            op,
            root=block,
            step_base=block * _STRIDE,
        )
