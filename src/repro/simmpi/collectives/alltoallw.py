"""Pairwise-exchange alltoallw driver (per-peer datatypes, byte displs).

``MPI_Alltoallw`` is the most general collective the paper names
("MPI_Alltoall/v/w"): per-peer counts, *byte* displacements, and
per-peer datatypes.  The datatype arrays are arrays of pointer-like
handles, so a single bit flip in one element sends the library chasing
a wild pointer — a fault surface none of the other collectives has.
"""

from __future__ import annotations

from typing import Generator, Sequence

from ..datatypes import Datatype
from .env import CollEnv
from .ring import pairwise_alltoall_steps


def alltoallw(
    env: CollEnv,
    sendaddr: int,
    sendcounts: Sequence[int],
    sdispls: Sequence[int],
    sendtypes: Sequence[Datatype],
    recvaddr: int,
    recvcounts: Sequence[int],
    rdispls: Sequence[int],
    recvtypes: Sequence[Datatype],
) -> Generator:
    """Exchange per-peer blocks with individual datatypes.

    Displacements are in **bytes**, as the MPI standard specifies for
    alltoallw (unlike the element displacements of alltoallv).
    """
    n = env.size
    me = env.me

    own = env.memory.read(
        sendaddr + int(sdispls[me]), int(sendcounts[me]) * sendtypes[me].size
    )
    env.check_truncate(own, int(recvcounts[me]) * recvtypes[me].size, recvtypes[me].size)
    env.memory.write(recvaddr + int(rdispls[me]), own)

    for dst, src, step in pairwise_alltoall_steps(me, n):
        data = env.memory.read(
            sendaddr + int(sdispls[dst]), int(sendcounts[dst]) * sendtypes[dst].size
        )
        yield from env.send(dst, step, data)
        payload = yield from env.recv(src, step)
        env.check_truncate(payload, int(recvcounts[src]) * recvtypes[src].size, recvtypes[src].size)
        env.memory.write(recvaddr + int(rdispls[src]), payload)
