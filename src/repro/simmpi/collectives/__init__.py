"""Collective communication algorithms for the simulated MPI runtime.

Schedules (:mod:`binomial`, :mod:`recursive_doubling`, :mod:`ring`) are
pure functions from ``(rank, size, root)`` to local send/recv plans;
drivers (one module per MPI operation) execute a plan against a
:class:`~repro.simmpi.collectives.env.CollEnv`.
"""

from .allgather import allgather
from .allreduce import allreduce
from .alltoall import alltoall
from .alltoallv import alltoallv
from .alltoallw import alltoallw
from .barrier import barrier
from .bcast import bcast
from .env import CollEnv
from .gather import gather
from .reduce import reduce
from .reduce_scatter import reduce_scatter_block
from .scan import exscan, scan
from .scatter import scatter
from .vvariants import allgatherv, gatherv, scatterv

__all__ = [
    "CollEnv",
    "allgather",
    "allreduce",
    "alltoall",
    "alltoallv",
    "alltoallw",
    "barrier",
    "bcast",
    "allgatherv",
    "exscan",
    "gather",
    "gatherv",
    "reduce",
    "reduce_scatter_block",
    "scan",
    "scatter",
    "scatterv",
]
