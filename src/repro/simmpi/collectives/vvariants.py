"""Variable-count rooted collectives: Gatherv, Scatterv, Allgatherv.

Counts and displacements are in elements and — as everywhere in this
simulator — are read from the caller's possibly-corrupted parameter
values, so flipped counts/displacements reach out of the buffers exactly
as they would in a real implementation.
"""

from __future__ import annotations

from typing import Generator, Sequence

from ..datatypes import Datatype
from .env import CollEnv
from .ring import ring_allgather_steps


def gatherv(
    env: CollEnv,
    sendaddr: int,
    sendcount: int,
    recvaddr: int,
    recvcounts: Sequence[int],
    displs: Sequence[int],
    dtype: Datatype,
    root: int,
) -> Generator:
    """Gather variable-sized contributions to the root.

    ``recvcounts``/``displs`` are significant only at the root.
    """
    n = env.size
    es = dtype.size
    root = root % n
    if env.me == root:
        for r in range(n):
            if r == env.me:
                payload = env.memory.read(sendaddr, sendcount * es)
            else:
                payload = yield from env.recv(r, 0)
            env.check_truncate(payload, int(recvcounts[r]) * es, es)
            env.memory.write(recvaddr + int(displs[r]) * es, payload)
    else:
        payload = env.memory.read(sendaddr, sendcount * es)
        yield from env.send(root, 0, payload)


def scatterv(
    env: CollEnv,
    sendaddr: int,
    sendcounts: Sequence[int],
    displs: Sequence[int],
    recvaddr: int,
    recvcount: int,
    dtype: Datatype,
    root: int,
) -> Generator:
    """Scatter variable-sized blocks from the root."""
    n = env.size
    es = dtype.size
    root = root % n
    if env.me == root:
        for r in range(n):
            block = env.memory.read(
                sendaddr + int(displs[r]) * es, int(sendcounts[r]) * es
            )
            if r == env.me:
                env.check_truncate(block, recvcount * es, es)
                env.memory.write(recvaddr, block)
            else:
                yield from env.send(r, 0, block)
    else:
        payload = yield from env.recv(root, 0)
        env.check_truncate(payload, recvcount * es, es)
        env.memory.write(recvaddr, payload)


def allgatherv(
    env: CollEnv,
    sendaddr: int,
    sendcount: int,
    recvaddr: int,
    recvcounts: Sequence[int],
    displs: Sequence[int],
    dtype: Datatype,
) -> Generator:
    """Ring allgather with per-rank block sizes and displacements."""
    n = env.size
    es = dtype.size
    me = env.me

    own = env.memory.read(sendaddr, sendcount * es)
    env.check_truncate(own, int(recvcounts[me]) * es, es)
    env.memory.write(recvaddr + int(displs[me]) * es, own)

    for send_to, recv_from, send_block, recv_block, step in ring_allgather_steps(me, n):
        data = env.memory.read(
            recvaddr + int(displs[send_block]) * es, int(recvcounts[send_block]) * es
        )
        yield from env.send(send_to, step, data)
        payload = yield from env.recv(recv_from, step)
        env.check_truncate(payload, int(recvcounts[recv_block]) * es, es)
        env.memory.write(recvaddr + int(displs[recv_block]) * es, payload)
