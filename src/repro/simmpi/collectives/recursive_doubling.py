"""Recursive-doubling / dissemination schedules.

Used for power-of-two allreduce and for the dissemination barrier (which
works at any size).
"""

from __future__ import annotations


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def allreduce_peers(rank: int, n: int) -> list[tuple[int, int]]:
    """Exchange partners for recursive-doubling allreduce.

    Only valid when ``n`` is a power of two.  Returns ordered
    ``(peer, step)`` pairs; at every step the rank exchanges its current
    partial result with ``peer`` and combines.
    """
    if not is_power_of_two(n):  # pragma: no cover - guarded by caller
        raise ValueError(f"recursive doubling requires power-of-two size, got {n}")
    out = []
    mask = 1
    step = 0
    while mask < n:
        out.append((rank ^ mask, step))
        mask <<= 1
        step += 1
    return out


def dissemination_rounds(rank: int, n: int) -> list[tuple[int, int, int]]:
    """Rounds of the dissemination barrier for any ``n``.

    Returns ordered ``(send_to, recv_from, step)`` triples; round ``k``
    signals the rank ``2**k`` ahead and waits on the rank ``2**k``
    behind.
    """
    out = []
    dist = 1
    step = 0
    while dist < n:
        out.append(((rank + dist) % n, (rank - dist) % n, step))
        dist <<= 1
        step += 1
    return out
