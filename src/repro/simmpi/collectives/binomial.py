"""Binomial-tree schedules (MPICH-style) for rooted collectives.

The tree is expressed over *virtual ranks* ``v = (rank - root) mod n`` so
any root works.  Each helper returns only the local schedule for one
rank; the global pattern emerges from every rank running its own — which
is exactly what lets a corrupted ``root`` parameter on a single rank
derail the pattern, as on a real system.
"""

from __future__ import annotations


def vrank(rank: int, root: int, n: int) -> int:
    """Virtual rank with the root mapped to 0."""
    return (rank - root) % n


def unvrank(v: int, root: int, n: int) -> int:
    """Inverse of :func:`vrank`."""
    return (v + root) % n


def bcast_parent(v: int, n: int) -> tuple[int | None, int]:
    """Parent of virtual rank ``v`` in the broadcast tree.

    Returns ``(parent_vrank, mask)`` where ``mask`` is the bit position
    at which ``v`` attaches to the tree; the root returns
    ``(None, first_mask_ge_n)``.
    """
    mask = 1
    while mask < n:
        if v & mask:
            return v - mask, mask
        mask <<= 1
    return None, mask


def bcast_children(v: int, n: int) -> list[tuple[int, int]]:
    """Children of virtual rank ``v``, as ``(child_vrank, step)`` pairs.

    ``step`` is a per-edge index usable as a message-tag discriminator.
    Children are produced in send order (largest subtree first), matching
    the MPICH binomial broadcast.
    """
    _, mask = bcast_parent(v, n)
    mask >>= 1
    out: list[tuple[int, int]] = []
    step = 0
    while mask > 0:
        child = v + mask
        if child < n:
            out.append((child, step))
        mask >>= 1
        step += 1
    return out


def reduce_schedule(v: int, n: int) -> list[tuple[str, int, int]]:
    """Local schedule for a binomial reduction toward virtual rank 0.

    Returns ordered actions ``("recv"| "send", peer_vrank, step)``:
    a rank receives partial results from each child, then (unless it is
    the root) sends its accumulated value to its parent.
    """
    actions: list[tuple[str, int, int]] = []
    mask = 1
    step = 0
    while mask < n:
        if v & mask == 0:
            peer = v | mask
            if peer < n:
                actions.append(("recv", peer, step))
        else:
            actions.append(("send", v & ~mask, step))
            break
        mask <<= 1
        step += 1
    return actions
