"""Allreduce driver: recursive doubling, with reduce+bcast fallback."""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from ..ops import ReduceOp
from .bcast import bcast
from .env import CollEnv
from .recursive_doubling import allreduce_peers, is_power_of_two
from .reduce import reduce

#: Step offset separating the bcast phase from the reduce phase in the
#: non-power-of-two fallback, so their tags can never collide.
_BCAST_STEP_BASE = 64


def allreduce(
    env: CollEnv,
    sendaddr: int,
    recvaddr: int,
    count: int,
    dtype: Datatype,
    op: ReduceOp,
    algorithm: str = "auto",
) -> Generator:
    """Combine ``count`` elements across all ranks; result everywhere.

    Algorithms: ``"auto"`` (recursive doubling when the size is a power
    of two, else reduce+bcast), ``"recursive_doubling"`` (forced;
    power-of-two sizes only), or ``"reduce_bcast"``.
    """
    n = env.size
    nbytes = count * dtype.size

    if algorithm not in ("auto", "recursive_doubling", "reduce_bcast"):
        raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
    if algorithm == "recursive_doubling" and not is_power_of_two(n):
        raise ValueError("recursive_doubling requires a power-of-two size")
    use_rd = (
        algorithm == "recursive_doubling"
        or (algorithm == "auto" and is_power_of_two(n))
    )

    if use_rd:
        acc = env.memory.read(sendaddr, nbytes)
        for peer, step in allreduce_peers(env.me, n):
            yield from env.send(peer, step, acc)
            payload = yield from env.recv(peer, step)
            env.check_truncate(payload, nbytes, dtype.size)
            # Keep the reduction in canonical rank order: the lower
            # rank block supplies the left operand, so non-commutative
            # ops fold exactly as a rank-0..n-1 left fold.
            if env.me < peer:
                acc = op.apply(acc, payload, dtype, rank=env.rank)
            else:
                acc = op.apply(payload, acc, dtype, rank=env.rank)
        env.memory.write(recvaddr, acc)
    else:
        yield from reduce(env, sendaddr, recvaddr, count, dtype, op, root=0)
        yield from bcast(env, recvaddr, count, dtype, root=0, step_base=_BCAST_STEP_BASE)
