"""Inclusive and exclusive prefix reductions (MPI_Scan / MPI_Exscan).

Chain algorithm: rank ``r`` waits for the inclusive prefix of ranks
``0..r-1`` from its left neighbour, combines, and forwards.  Linear
latency, but prefix traffic is rare in the workloads and the chain keeps
the per-rank schedule trivially derived from local parameters (the
property the fault model relies on).
"""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from ..ops import ReduceOp
from .env import CollEnv


def scan(
    env: CollEnv,
    sendaddr: int,
    recvaddr: int,
    count: int,
    dtype: Datatype,
    op: ReduceOp,
) -> Generator:
    """Inclusive prefix reduction: rank r receives x_0 ⊕ … ⊕ x_r."""
    nbytes = count * dtype.size
    mine = env.memory.read(sendaddr, nbytes)
    if env.me > 0:
        prefix = yield from env.recv(env.me - 1, 0)
        env.check_truncate(prefix, nbytes, dtype.size)
        mine = op.apply(prefix, mine, dtype, rank=env.rank)
    env.memory.write(recvaddr, mine)
    if env.me + 1 < env.size:
        yield from env.send(env.me + 1, 0, mine)


def exscan(
    env: CollEnv,
    sendaddr: int,
    recvaddr: int,
    count: int,
    dtype: Datatype,
    op: ReduceOp,
) -> Generator:
    """Exclusive prefix reduction: rank r receives x_0 ⊕ … ⊕ x_{r-1}.

    Rank 0's receive buffer is undefined in MPI and left untouched.
    """
    nbytes = count * dtype.size
    mine = env.memory.read(sendaddr, nbytes)
    if env.me == 0:
        inclusive = mine
    else:
        prefix = yield from env.recv(env.me - 1, 0)
        env.check_truncate(prefix, nbytes, dtype.size)
        env.memory.write(recvaddr, prefix)
        inclusive = op.apply(prefix, mine, dtype, rank=env.rank)
    if env.me + 1 < env.size:
        yield from env.send(env.me + 1, 0, inclusive)
