"""Pairwise-exchange alltoall driver."""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from .env import CollEnv
from .ring import pairwise_alltoall_steps


def alltoall(
    env: CollEnv,
    sendaddr: int,
    sendcount: int,
    recvaddr: int,
    recvcount: int,
    dtype: Datatype,
) -> Generator:
    """Exchange rank-major blocks: block ``j`` of rank ``i``'s send
    buffer lands in block ``i`` of rank ``j``'s receive buffer."""
    n = env.size
    sendbytes = sendcount * dtype.size
    recvbytes = recvcount * dtype.size

    own = env.memory.read(sendaddr + env.me * sendbytes, sendbytes)
    env.check_truncate(own, recvbytes, dtype.size)
    env.memory.write(recvaddr + env.me * recvbytes, own)

    for dst, src, step in pairwise_alltoall_steps(env.me, n):
        data = env.memory.read(sendaddr + dst * sendbytes, sendbytes)
        yield from env.send(dst, step, data)
        payload = yield from env.recv(src, step)
        env.check_truncate(payload, recvbytes, dtype.size)
        env.memory.write(recvaddr + src * recvbytes, payload)
