"""Binomial-tree broadcast driver."""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from .binomial import bcast_children, bcast_parent, unvrank, vrank
from .env import CollEnv


def bcast(
    env: CollEnv,
    addr: int,
    count: int,
    dtype: Datatype,
    root: int,
    step_base: int = 0,
    algorithm: str = "binomial",
) -> Generator:
    """Broadcast ``count`` elements at ``addr`` from comm-local ``root``.

    Every rank computes its own tree position from its own parameters;
    a corrupted ``root`` on one rank therefore sends/awaits messages on
    edges no other rank uses, which ends in deadlock — the behaviour the
    paper classifies as ``INF_LOOP``.

    ``algorithm`` selects the schedule: ``"binomial"`` (MPICH-style
    tree, the default) or ``"chain"`` (linear pipeline — corruption at a
    rank only reaches its *downstream* neighbours, a different
    propagation pattern).
    """
    if algorithm == "chain":
        yield from _bcast_chain(env, addr, count, dtype, root, step_base)
        return
    if algorithm != "binomial":
        raise ValueError(f"unknown bcast algorithm {algorithm!r}")
    n = env.size
    nbytes = count * dtype.size
    v = vrank(env.me, root % n if n else 0, n)
    parent, _ = bcast_parent(v, n)

    if parent is not None:
        payload = yield from env.recv(unvrank(parent, root, n), step_base)
        env.check_truncate(payload, nbytes, dtype.size)
        env.memory.write(addr, payload)

    children = bcast_children(v, n)
    if children:
        data = env.memory.read(addr, nbytes)
        for child, _edge in children:
            yield from env.send(unvrank(child, root, n), step_base, data)


def _bcast_chain(
    env: CollEnv, addr: int, count: int, dtype: Datatype, root: int, step_base: int
) -> Generator:
    """Linear-chain broadcast: v receives from v-1, forwards to v+1."""
    n = env.size
    nbytes = count * dtype.size
    v = vrank(env.me, root % n, n)
    if v > 0:
        payload = yield from env.recv(unvrank(v - 1, root, n), step_base)
        env.check_truncate(payload, nbytes, dtype.size)
        env.memory.write(addr, payload)
    if v + 1 < n:
        data = env.memory.read(addr, nbytes)
        yield from env.send(unvrank(v + 1, root, n), step_base, data)
