"""Binomial-tree reduction driver."""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from ..ops import ReduceOp
from .binomial import reduce_schedule, unvrank, vrank
from .env import CollEnv


#: Tag step used to forward the finished non-commutative fold from rank
#: 0 to a non-zero root.  Above any binomial-tree step at the sizes this
#: simulator targets, below the per-block stride of reduce_scatter.
_FORWARD_STEP = 7


def reduce(
    env: CollEnv,
    sendaddr: int,
    recvaddr: int,
    count: int,
    dtype: Datatype,
    op: ReduceOp,
    root: int,
    step_base: int = 0,
) -> Generator:
    """Reduce ``count`` elements elementwise onto comm-local ``root``.

    Partial results flow up a binomial tree; only the root writes
    ``recvaddr`` (as in MPI, where the receive buffer is significant
    only at the root).

    For commutative ops the tree lives in virtual ranks (root mapped to
    0), so any root costs the same.  The binomial tree combines
    contiguous *virtual*-rank blocks, which for a non-zero root is a
    rotation of comm rank order — fine when operand order is free, but
    wrong for non-commutative ops, where MPI mandates the canonical
    rank-0..n-1 fold.  Those ops therefore reduce over actual comm
    ranks toward rank 0, which forwards the finished fold to the root.
    """
    n = env.size
    nbytes = count * dtype.size
    root = root % n

    if not op.commutative and root != 0:
        yield from _reduce_rank_ordered(
            env, sendaddr, recvaddr, count, dtype, op, root, step_base
        )
        return

    v = vrank(env.me, root, n)

    acc = env.memory.read(sendaddr, nbytes)
    for action, peer_v, step in reduce_schedule(v, n):
        peer = unvrank(peer_v, root, n)
        if action == "recv":
            payload = yield from env.recv(peer, step_base + step)
            env.check_truncate(payload, nbytes, dtype.size)
            acc = op.apply(acc, payload, dtype, rank=env.rank)
        else:
            yield from env.send(peer, step_base + step, acc)

    if v == 0:
        env.memory.write(recvaddr, acc)


def _reduce_rank_ordered(
    env: CollEnv,
    sendaddr: int,
    recvaddr: int,
    count: int,
    dtype: Datatype,
    op: ReduceOp,
    root: int,
    step_base: int,
) -> Generator:
    """Binomial reduction in actual comm-rank order, forwarded to root.

    Rank r accumulates the in-order fold of the contiguous rank block
    it owns in the (unrotated) binomial tree — the received child block
    always sits *after* the accumulator in rank order, so
    ``op(acc, child)`` is the canonical left fold.
    """
    nbytes = count * dtype.size
    acc = env.memory.read(sendaddr, nbytes)
    for action, peer, step in reduce_schedule(env.me, env.size):
        if action == "recv":
            payload = yield from env.recv(peer, step_base + step)
            env.check_truncate(payload, nbytes, dtype.size)
            acc = op.apply(acc, payload, dtype, rank=env.rank)
        else:
            yield from env.send(peer, step_base + step, acc)

    if env.me == 0:
        yield from env.send(root, step_base + _FORWARD_STEP, acc)
    if env.me == root:
        payload = yield from env.recv(0, step_base + _FORWARD_STEP)
        env.check_truncate(payload, nbytes, dtype.size)
        env.memory.write(recvaddr, payload)
