"""Binomial-tree reduction driver."""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from ..ops import ReduceOp
from .binomial import reduce_schedule, unvrank, vrank
from .env import CollEnv


def reduce(
    env: CollEnv,
    sendaddr: int,
    recvaddr: int,
    count: int,
    dtype: Datatype,
    op: ReduceOp,
    root: int,
    step_base: int = 0,
) -> Generator:
    """Reduce ``count`` elements elementwise onto comm-local ``root``.

    Partial results flow up a binomial tree; only the root writes
    ``recvaddr`` (as in MPI, where the receive buffer is significant
    only at the root).
    """
    n = env.size
    nbytes = count * dtype.size
    v = vrank(env.me, root % n, n)

    acc = env.memory.read(sendaddr, nbytes)
    for action, peer_v, step in reduce_schedule(v, n):
        peer = unvrank(peer_v, root, n)
        if action == "recv":
            payload = yield from env.recv(peer, step_base + step)
            env.check_truncate(payload, nbytes)
            acc = op.apply(acc, payload, dtype, rank=env.rank)
        else:
            yield from env.send(peer, step_base + step, acc)

    if v == 0:
        env.memory.write(recvaddr, acc)
