"""Linear gather driver (root collects one block from every rank)."""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from .env import CollEnv


def gather(
    env: CollEnv,
    sendaddr: int,
    sendcount: int,
    recvaddr: int,
    recvcount: int,
    dtype: Datatype,
    root: int,
) -> Generator:
    """Gather ``sendcount`` elements from every rank into the root's
    receive buffer, rank-major (block ``r`` at ``recvaddr + r*recvcount``).

    ``recvcount`` is the per-rank block size and is significant only at
    the root, as in MPI.
    """
    n = env.size
    sendbytes = sendcount * dtype.size
    root = root % n

    if env.me == root:
        blockbytes = recvcount * dtype.size
        for r in range(n):
            if r == env.me:
                payload = env.memory.read(sendaddr, sendbytes)
            else:
                payload = yield from env.recv(r, 0)
            env.check_truncate(payload, blockbytes, dtype.size)
            env.memory.write(recvaddr + r * blockbytes, payload)
    else:
        payload = env.memory.read(sendaddr, sendbytes)
        yield from env.send(root, 0, payload)
