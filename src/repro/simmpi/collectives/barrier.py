"""Dissemination barrier driver."""

from __future__ import annotations

from typing import Generator

from .env import CollEnv
from .recursive_doubling import dissemination_rounds


def barrier(env: CollEnv) -> Generator:
    """Synchronise all ranks of the communicator.

    The dissemination barrier completes in ``ceil(log2 n)`` rounds at any
    communicator size.  Barrier has no data buffer, so the only faultable
    parameter is the communicator handle — which is why the paper finds
    faulty barriers so lethal (Fig. 11): every fault hits the one
    parameter whose corruption deadlocks or kills the job.
    """
    for send_to, recv_from, step in dissemination_rounds(env.me, env.size):
        yield from env.send(send_to, step, b"")
        payload = yield from env.recv(recv_from, step)
        env.check_truncate(payload, 0)
