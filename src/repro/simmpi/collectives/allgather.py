"""Ring allgather driver."""

from __future__ import annotations

from typing import Generator

from ..datatypes import Datatype
from .env import CollEnv
from .ring import ring_allgather_steps


def allgather(
    env: CollEnv,
    sendaddr: int,
    sendcount: int,
    recvaddr: int,
    recvcount: int,
    dtype: Datatype,
) -> Generator:
    """Gather one block from every rank into every rank's receive buffer.

    Uses the ring algorithm: each rank seeds its own block, then for
    ``n - 1`` steps forwards the block it most recently received to its
    right neighbour.
    """
    n = env.size
    sendbytes = sendcount * dtype.size
    blockbytes = recvcount * dtype.size

    own = env.memory.read(sendaddr, sendbytes)
    env.check_truncate(own, blockbytes, dtype.size)
    env.memory.write(recvaddr + env.me * blockbytes, own)

    for send_to, recv_from, send_block, recv_block, step in ring_allgather_steps(env.me, n):
        data = env.memory.read(recvaddr + send_block * blockbytes, blockbytes)
        yield from env.send(send_to, step, data)
        payload = yield from env.recv(recv_from, step)
        env.check_truncate(payload, blockbytes, dtype.size)
        env.memory.write(recvaddr + recv_block * blockbytes, payload)
