"""Table IV — Eq. 1 correlation between application features and the
error-rate level (mini-LAMMPS).

Paper numbers: Init 0.56, Input 0.69, Compute 0.30, End 0.49,
ErrHdl 0.64, Non-ErrHdl 0.36, nInv 0.41, nDiffGraph 0.47,
StackDepth 0.37.  Expected shapes: the input/init phases and the
error-handling indicator correlate *positively* (>0.5) with
sensitivity; the compute phase and non-error-handling code sit below
0.5; ErrHdl and Non-ErrHdl mirror each other around 0.5.
"""

import common

from repro.analysis import render_table
from repro.ml import TABLE4_FEATURES, correlation_table


def bench_table4_correlation(benchmark):
    profile = common.get_profile("lammps")
    campaign = common.run_campaign("lammps", param_policy="buffer", seed=10, max_points=30)

    table = common.once(benchmark, lambda: correlation_table(profile, campaign))
    print()
    print(
        render_table(
            list(TABLE4_FEATURES),
            [[f"{table[k]:.2f}" for k in TABLE4_FEATURES]],
            title="Table IV: feature vs error-rate-level correlation (Eq. 1)",
        )
    )

    assert set(table) == set(TABLE4_FEATURES)
    assert all(0.0 <= v <= 1.0 for v in table.values())
    # ErrHdl/Non-ErrHdl are complementary indicators.
    assert abs(table["ErrHdl"] + table["Non-ErrHdl"] - 1.0) < 1e-9
    # The paper's strongest signals: early phases & error handling are
    # more sensitivity-correlated than ordinary compute code.
    assert table["Input Phase"] >= table["Compute Phase"]
    assert table["ErrHdl"] >= 0.5 >= table["Non-ErrHdl"]
