"""Figure 1 — injecting into two "equivalent" ranks of an LU
MPI_Allreduce produces very similar outcome mixes.

Paper setup: LU, 32 ranks, 100 buffer-fault tests per point, two
randomly chosen (equivalent) ranks of one MPI_Allreduce.  Expected
shape: the two ranks' outcome-type histograms nearly coincide.
"""

from collections import Counter

import common

from repro.analysis import render_grouped_bars
from repro.injection import Campaign, enumerate_points
from repro.injection.outcome import OUTCOME_ORDER
from repro.pruning import equivalence_classes


def _equivalent_rank_pair(profile):
    """Two ranks from the largest equivalence class."""
    classes = equivalence_classes(profile)
    largest = max(classes, key=len)
    return largest[0], largest[1]


def bench_fig01_equivalent_ranks(benchmark):
    profile = common.get_profile("lu", "S")
    app = common.get_app("lu", "S")
    r1, r2 = _equivalent_rank_pair(profile)

    site = next(
        p for p in enumerate_points(profile) if p.collective == "Allreduce" and p.rank == r1
    )
    points = [
        site,
        type(site)(r2, site.collective, site.site, site.invocation),
    ]

    def run():
        campaign = Campaign(
            app, profile, tests_per_point=40, param_policy="buffer", seed=1
        )
        return campaign.run(points)

    result = common.once(benchmark, run)

    groups = {}
    for label, point in (("rand1", points[0]), ("rand2", points[1])):
        counts = Counter(t.outcome for t in result.points[point].tests)
        total = sum(counts.values())
        groups[label] = {o.value: counts.get(o, 0) / total for o in OUTCOME_ORDER}
    print()
    print(render_grouped_bars(groups, title="Fig. 1: LU Allreduce, two equivalent ranks"))

    # The paper's claim: the two equivalent ranks respond alike.
    l1 = max(abs(groups["rand1"][k] - groups["rand2"][k]) for k in groups["rand1"])
    print(f"max per-outcome divergence: {l1:.2%}")
    assert l1 <= 0.30, "equivalent ranks diverged far more than the paper observed"
