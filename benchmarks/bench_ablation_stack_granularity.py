"""Ablation 3 — call-stack equivalence granularity for context pruning.

DESIGN.md calls out the grouping key of § III-B as a design choice:
group invocations by the *full* call stack (the paper's rule) or merely
by the call site (leaf-only).  Site-only grouping prunes more points but
merges genuinely different application contexts; full-stack groups
should be more homogeneous — lower within-group error-rate dispersion.
"""

import common
import numpy as np

from repro.analysis import render_table
from repro.injection import Campaign, enumerate_points
from repro.ml.features import invocation_stack


def _groups(profile, points, granularity):
    groups = {}
    for pt in points:
        summary = profile.summary(pt.rank, pt.site_key)
        if granularity == "full-stack":
            key = (pt.rank, pt.site_key, invocation_stack(summary, pt.invocation))
        else:  # site-only
            key = (pt.rank, pt.site_key)
        groups.setdefault(key, []).append(pt)
    return groups


def bench_ablation_stack_granularity(benchmark):
    app = common.get_app("lammps")
    profile = common.get_profile("lammps")
    # Rank 0's Allreduce points: the sites with real invocation variety.
    points = [
        p
        for p in enumerate_points(profile)
        if p.rank == 0 and p.collective == "Allreduce"
    ]

    def measure():
        campaign = Campaign(
            app, profile, tests_per_point=12, param_policy="buffer", seed=77
        )
        result = campaign.run(points)
        rates = {pt: pr.error_rate for pt, pr in result.points.items()}

        out = {}
        for granularity in ("full-stack", "site-only"):
            groups = _groups(profile, points, granularity)
            reduction = 1.0 - len(groups) / len(points)
            dispersions = [
                float(np.std([rates[p] for p in members]))
                for members in groups.values()
                if len(members) > 1
            ]
            out[granularity] = {
                "groups": len(groups),
                "reduction": reduction,
                "mean_within_group_std": float(np.mean(dispersions)) if dispersions else 0.0,
            }
        return out

    out = common.once(benchmark, measure)
    print()
    print(
        render_table(
            ["granularity", "groups", "point reduction", "within-group error-rate std"],
            [
                [g, v["groups"], f"{v['reduction']:.1%}", f"{v['mean_within_group_std']:.3f}"]
                for g, v in out.items()
            ],
            title="Ablation: context-pruning grouping granularity",
        )
    )

    full, site = out["full-stack"], out["site-only"]
    # Site-only merges at least as aggressively...
    assert site["groups"] <= full["groups"]
    # ...but full-stack groups are at least as homogeneous (the property
    # Fig. 3 relies on).
    assert full["mean_within_group_std"] <= site["mean_within_group_std"] + 0.05
