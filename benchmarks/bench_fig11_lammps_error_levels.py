"""Figure 11 — mini-LAMMPS error-rate levels per collective.

Paper setup: error-rate level distribution (low ≤ 15 %, med, high
≥ 85 %) per collective.  Expected shapes: faulty MPI_Barrier is lethal
(large high/med share); MPI_Allreduce — despite being >84 % of all
collective calls — shows a *low* error rate.
"""

import common
import numpy as np

from repro.analysis import PAPER_3_LEVELS, level_distribution, render_grouped_bars


def bench_fig11_lammps_error_levels(benchmark):
    def run():
        return common.run_campaign("lammps", param_policy="buffer", seed=10, max_points=30)

    campaign = common.once(benchmark, run)
    per_coll = campaign.by_collective()
    groups = {
        coll: level_distribution(sub.error_rates(), PAPER_3_LEVELS)
        for coll, sub in sorted(per_coll.items())
    }
    print()
    print(render_grouped_bars(groups, title="Fig. 11: mini-LAMMPS error-rate levels"))
    means = {c: float(np.mean(sub.error_rates())) for c, sub in per_coll.items()}
    print("mean error rate per collective:", {k: round(v, 3) for k, v in means.items()})

    # Barrier is lethal: everything lands in med/high.
    barrier = groups.get("Barrier")
    assert barrier is not None
    assert barrier["med"] + barrier["high"] >= 0.99
    # Allreduce has a low error rate (the paper calls this out as a
    # surprise given its dominance of the collective mix).
    allreduce = groups["Allreduce"]
    assert allreduce["low"] >= 0.5
    assert means["Allreduce"] <= means["Barrier"]
