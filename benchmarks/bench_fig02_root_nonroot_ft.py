"""Figure 2 — the root and a non-root rank of an FT MPI_Reduce respond
*differently* to injected faults.

Paper setup: FT, 32 ranks, 100 tests per point, the root and one random
non-root of an MPI_Reduce.  Expected shape: the two outcome mixes
differ noticeably (unlike Fig. 1's equivalent pair).  Faults go into
every parameter: the root/non-root asymmetry of a rooted collective
lives mostly in the non-buffer parameters (tree position, truncation
direction, recv-buffer significance).
"""

from collections import Counter

import common

from repro.analysis import render_grouped_bars
from repro.injection import Campaign, InjectionPoint, enumerate_points
from repro.injection.outcome import OUTCOME_ORDER


def bench_fig02_root_vs_nonroot(benchmark):
    profile = common.get_profile("ft", "S")
    app = common.get_app("ft", "S")

    reduce_point = next(
        p for p in enumerate_points(profile) if p.collective == "Reduce" and p.rank == 0
    )
    summary = profile.summary(0, reduce_point.site_key)
    root = summary.root_world
    nonroot = next(r for r in range(profile.nranks) if r != root)
    points = [
        InjectionPoint(root, reduce_point.collective, reduce_point.site, reduce_point.invocation),
        InjectionPoint(nonroot, reduce_point.collective, reduce_point.site, reduce_point.invocation),
    ]

    def run():
        campaign = Campaign(
            app, profile, tests_per_point=60, param_policy="all", seed=2
        )
        return campaign.run(points)

    result = common.once(benchmark, run)

    groups = {}
    for label, point in (("root", points[0]), ("non-root", points[1])):
        counts = Counter(t.outcome for t in result.points[point].tests)
        total = sum(counts.values())
        groups[label] = {o.value: counts.get(o, 0) / total for o in OUTCOME_ORDER}
    print()
    print(render_grouped_bars(groups, title="Fig. 2: FT Reduce, root vs non-root"))

    tvd = 0.5 * sum(
        abs(groups["root"][k] - groups["non-root"][k]) for k in groups["root"]
    )
    print(f"total-variation distance root vs non-root: {tvd:.2%}")
    # The paper's claim: root and non-root sensitivities DIFFER.
    assert tvd >= 0.05, "root and non-root should respond differently"
