"""Simulator microbenchmarks — the substrate's own cost.

Not a paper figure: these measure the simulated-MPI substrate so that
regressions in the scheduler or collective drivers are visible.  Unlike
the campaign benches, these use multiple pytest-benchmark rounds.
"""

import pytest

from repro.simmpi import run_app


def _allreduce_app(iters, count):
    def app(ctx):
        s = ctx.alloc(count, ctx.DOUBLE)
        r = ctx.alloc(count, ctx.DOUBLE)
        s.view[:] = ctx.rank
        for _ in range(iters):
            yield from ctx.Allreduce(s.addr, r.addr, count, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return float(r.view[0])

    return app


@pytest.mark.parametrize("nranks", [8, 32])
def bench_allreduce_throughput(benchmark, nranks):
    app = _allreduce_app(iters=50, count=64)
    result = benchmark(lambda: run_app(app, nranks))
    assert result.results[0] == sum(range(nranks))


def bench_alltoall_throughput(benchmark):
    def app(ctx):
        n = ctx.size
        s = ctx.alloc(n * 16, ctx.DOUBLE)
        r = ctx.alloc(n * 16, ctx.DOUBLE)
        for _ in range(20):
            yield from ctx.Alltoall(s.addr, 16, r.addr, 16, ctx.DOUBLE, ctx.WORLD)
        return True

    assert benchmark(lambda: run_app(app, 16)).results[0]


def bench_barrier_throughput(benchmark):
    def app(ctx):
        for _ in range(100):
            yield from ctx.Barrier(ctx.WORLD)
        return True

    assert benchmark(lambda: run_app(app, 32)).results[0]


def bench_lammps_timestep(benchmark):
    """One full golden mini-LAMMPS (class T) job."""
    from repro.apps import make_app

    app = make_app("lammps", "T")
    result = benchmark(lambda: run_app(app.main, app.nranks))
    assert result.results[0]["energy"] < 0
