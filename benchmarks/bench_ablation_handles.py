"""Ablation 2 — pointer-like handles vs small-integer handles.

DESIGN.md claims pointer-like MPI object handles (Open MPI style) drive
the SEG_FAULT-dominance of datatype/op/comm faults in Fig. 9; an
MPICH-style small-int handle world would detect corrupted handles at
validation and report MPI_ERR instead.

The small-int world is emulated with an instrument after the injector:
any corrupted handle value is replaced by an *in-extent* invalid handle,
which the library detects (MPI_ERR) rather than dereferencing into
unmapped memory.
"""

from collections import Counter

import common
import numpy as np

from repro.analysis import render_grouped_bars
from repro.injection import FaultInjector, FaultSpec, Outcome, enumerate_points
from repro.injection.outcome import OUTCOME_ORDER, classify_exception
from repro.simmpi import Instrument, SimMPIError
from repro.simmpi.handles import OBJECT_EXTENT

N_TESTS = 60


class SmallIntHandles(Instrument):
    """Map wild handle values back into the detectable range."""

    def __init__(self, runtime):
        self.spaces = {
            "datatype": runtime.type_space,
            "op": runtime.op_space,
            "comm": runtime.comm_factory.space,
        }

    def on_collective(self, ctx, call):
        for param, space in self.spaces.items():
            if param in call.args:
                handle = int(call.args[param])
                if not space.contains(handle):
                    # A small-int table lookup fails cleanly: emulate by
                    # an in-extent corrupted handle (detected -> MPI_ERR).
                    call.args[param] = space.handles()[0] + OBJECT_EXTENT // 2


def bench_ablation_handles(benchmark):
    app = common.get_app("lu")
    profile = common.get_profile("lu")
    golden = profile.golden_results
    budget = max(profile.golden_steps * 8, 50_000)
    point = next(p for p in enumerate_points(profile) if p.collective == "Allreduce")

    def run_both():
        mixes = {}
        for mode in ("pointer handles", "small-int handles"):
            outcomes = []
            for t in range(N_TESTS):
                rng = np.random.default_rng(2000 + t)
                param = ("datatype", "op", "comm")[t % 3]
                injector = FaultInjector(FaultSpec(point, param, None), rng)
                instruments = [injector]
                if mode == "small-int handles":
                    # Runtime-dependent; installed lazily per run below.
                    instruments.append(None)

                def run_once(instrs=instruments):
                    from repro.simmpi import SimMPI

                    rt = SimMPI(app.nranks, step_budget=budget)
                    real = [i for i in instrs if i is not None]
                    if None in instrs:
                        real.append(SmallIntHandles(rt))
                    try:
                        result = rt.run(app.main, instruments=real)
                    except SimMPIError as exc:
                        return classify_exception(exc)
                    return (
                        Outcome.SUCCESS
                        if app.compare(golden, result.results)
                        else Outcome.WRONG_ANS
                    )

                outcomes.append(run_once())
            counts = Counter(outcomes)
            mixes[mode] = {o.value: counts.get(o, 0) / N_TESTS for o in OUTCOME_ORDER}
        return mixes

    mixes = common.once(benchmark, run_both)
    print()
    print(
        render_grouped_bars(
            mixes, title="Ablation: handle-fault outcomes, pointer vs small-int handles"
        )
    )

    pointer = mixes["pointer handles"]
    smallint = mixes["small-int handles"]
    # Pointer handles: SEG_FAULT dominates (Fig. 9's shape).
    assert pointer["SEG_FAULT"] > pointer["MPI_ERR"]
    # Small-int handles: everything is detected as MPI_ERR instead.
    assert smallint["MPI_ERR"] > smallint["SEG_FAULT"]
    assert smallint["MPI_ERR"] >= 0.8
