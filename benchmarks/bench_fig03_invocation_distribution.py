"""Figure 3 — error-rate distribution over same-call-stack invocations
of one mini-LAMMPS MPI_Allreduce call site.

Paper setup: one LAMMPS Allreduce site invoked 107 times; 100
invocations share a call stack; 100 buffer-fault tests each.  The
per-invocation error rates concentrate (paper: Gaussian with mean
29.58 %, std 7.69).  Expected shape here: a unimodal concentration —
std well below the full 0–100 % spread.
"""

import common
import numpy as np

from repro.analysis import fit_error_rates, histogram, render_histogram
from repro.injection import Campaign, enumerate_points

#: A longer-running mini-LAMMPS so one thermo site has many
#: same-stack invocations (the paper uses 100 of 107).
MD_PARAMS = dict(
    cells=(3, 4, 4),
    spacing=1.25,
    steps=50,
    dt=0.005,
    temperature=0.6,
    cutoff=2.5,
    reneighbor=5,
    seed=2015,
)
NRANKS = 4


def _same_stack_invocations(profile):
    """The error-handling Allreduce site on rank 0 with the most
    same-stack invocations.

    The paper's LAMMPS site shows a mid-range mean error rate (29.58 %);
    the matching sites here are the ``check_*`` allreduces, whose flag
    buffers make faults probabilistically — not always — fatal.  (The
    thermo allreduce would be degenerate: its values only feed output.)
    """
    from repro.ml.features import stack_is_errhal

    best = None
    for (rank, key), summary in profile.summaries.items():
        if rank != 0 or key[0] != "Allreduce":
            continue
        for stack, invs in summary.stack_groups.items():
            if not stack_is_errhal(stack):
                continue
            if best is None or len(invs) > len(best[2]):
                best = (key, stack, invs)
    return best


def bench_fig03_invocation_distribution(benchmark):
    from repro.apps import MiniMD
    from repro.profiling import profile_application

    app = MiniMD(NRANKS, **MD_PARAMS)
    profile = profile_application(app)
    key, stack, invocations = _same_stack_invocations(profile)
    invocations = invocations[: min(len(invocations), 36)]
    points = [
        p
        for p in enumerate_points(profile)
        if p.rank == 0 and p.site_key == key and p.invocation in set(invocations)
    ]

    def run():
        campaign = Campaign(app, profile, tests_per_point=25, param_policy="buffer", seed=3)
        return campaign.run(points)

    result = common.once(benchmark, run)
    rates = [100.0 * pr.error_rate for pr in result.points.values()]
    fit = fit_error_rates(rates)
    edges, counts = histogram(rates, bin_width=5.0)
    print()
    print(
        render_histogram(
            edges,
            counts,
            title=(
                f"Fig. 3: error rate over {len(rates)} same-stack invocations "
                f"of {key[0]}@{key[1]} (mean={fit.mean:.2f}%, std={fit.std:.2f})"
            ),
        )
    )

    # The paper's claim: same-stack invocations respond alike — the
    # distribution is concentrated (paper: std 7.69 around mean 29.58),
    # not spread over the whole 0-100 % range, and the faults matter
    # (non-degenerate mean).
    assert fit.std < 25.0, "same-stack invocations should have similar error rates"
    assert 10.0 < fit.mean < 90.0, "the site's faults should matter probabilistically"
    spread = np.ptp(np.asarray(rates))
    print(f"spread: {spread:.1f} percentage points, std: {fit.std:.2f}")
