"""Extension — error-propagation blast radius per collective semantics.

Beyond the paper's outcome taxonomy (the introduction flags "how errors
propagate between the application processes" as unexplored): for clean-
exit runs, count the ranks whose final result signature diverged from
the golden run.  Collective semantics predict the pattern:

* Allreduce delivers one combined result to everyone → corruption is
  all-or-nothing (global blast radius);
* a non-root Gather contribution reaches only the root's buffer → the
  blast radius is contained.
"""

import common

from repro.analysis import propagation_study
from repro.analysis.reports import render_table
from repro.injection import enumerate_points


def bench_propagation(benchmark):
    app = common.get_app("lu")
    profile = common.get_profile("lu")
    points = enumerate_points(profile)
    allreduce = next(p for p in points if p.collective == "Allreduce")

    def run():
        return propagation_study(
            app, profile, allreduce, tests=25, param_policy="sendbuf", seed=12
        )

    prop = common.once(benchmark, run)
    rows = [
        [
            str(prop.point),
            f"{prop.mean_blast_radius:.2f}/{prop.nranks}",
            f"{prop.global_taint_rate:.0%}",
            f"{prop.containment_rate:.0%}",
            sum(1 for t in prop.tainted if t is None),
        ]
    ]
    print()
    print(
        render_table(
            ["point", "mean blast radius", "global taint", "contained", "aborted runs"],
            rows,
            title="Extension: fault propagation through an Allreduce",
        )
    )

    # Allreduce semantics: taint is all-or-nothing.
    for taint in prop.completed:
        assert len(taint) in (0, prop.nranks)
    # Some corruption must actually propagate for the study to be
    # meaningful (sendbuf faults reach everyone unless masked).
    assert prop.global_taint_rate > 0.0
