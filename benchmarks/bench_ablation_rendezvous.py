"""Ablation 1 — per-rank schedule expansion vs a central rendezvous.

DESIGN.md claims the per-rank expansion of collectives (every rank
derives its schedule from its *own* parameters) is what lets corrupted
``root`` parameters manifest as deadlocks (INF_LOOP).  A central
executor that runs the collective once with the clean parameters would
silently "fix" the mismatch.

The central-rendezvous world is emulated with a sanitising instrument
installed *after* the injector: it restores the root parameter to its
clean value, exactly as a central executor keyed on the majority's
arguments would behave.
"""

from collections import Counter

import common
import numpy as np

from repro.analysis import render_grouped_bars
from repro.injection import FaultInjector, FaultSpec, Outcome, enumerate_points
from repro.injection.outcome import OUTCOME_ORDER, classify_exception
from repro.simmpi import Instrument, SimMPIError, run_app

N_TESTS = 60


class SanitiseRoot(Instrument):
    """Undo root-parameter corruption (the central-rendezvous stand-in)."""

    def __init__(self, clean_root: int):
        self.clean_root = clean_root

    def on_collective(self, ctx, call):
        if "root" in call.args:
            call.args["root"] = self.clean_root


def _outcome(app, nranks, instruments, budget, compare):
    try:
        result = run_app(app, nranks, instruments=instruments, step_budget=budget)
    except SimMPIError as exc:
        return classify_exception(exc)
    return Outcome.SUCCESS if compare(result.results) else Outcome.WRONG_ANS


def bench_ablation_rendezvous(benchmark):
    app = common.get_app("mg")
    profile = common.get_profile("mg")
    golden = profile.golden_results
    budget = max(profile.golden_steps * 8, 50_000)
    point = next(p for p in enumerate_points(profile) if p.collective == "Bcast")
    clean_root = profile.summary(point.rank, point.site_key).root_world

    def run_both():
        mixes = {}
        for mode in ("per-rank schedules", "central rendezvous"):
            outcomes = []
            for t in range(N_TESTS):
                rng = np.random.default_rng(1000 + t)
                injector = FaultInjector(FaultSpec(point, "root", None), rng)
                instruments = [injector]
                if mode == "central rendezvous":
                    instruments.append(SanitiseRoot(clean_root))
                outcomes.append(
                    _outcome(
                        app.main,
                        app.nranks,
                        instruments,
                        budget,
                        lambda res: app.compare(golden, res),
                    )
                )
            counts = Counter(outcomes)
            mixes[mode] = {o.value: counts.get(o, 0) / N_TESTS for o in OUTCOME_ORDER}
        return mixes

    mixes = common.once(benchmark, run_both)
    print()
    print(
        render_grouped_bars(
            mixes, title="Ablation: root-fault outcomes, schedule expansion vs rendezvous"
        )
    )

    faulty = mixes["per-rank schedules"]
    central = mixes["central rendezvous"]
    # The design claim: only the per-rank model produces hangs/crashes
    # from root corruption; the central model masks everything.
    assert faulty["INF_LOOP"] + faulty["MPI_ERR"] > 0.3
    assert central["SUCCESS"] >= 0.99
