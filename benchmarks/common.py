"""Shared infrastructure for the paper-reproduction benchmark harness.

Campaigns are the expensive part (one simulated job per injection test),
so every benchmark draws from a process-wide + on-disk cache keyed by
the campaign configuration.  Delete ``benchmarks/.cache`` to regenerate
everything from scratch.

Scale note: pruning studies (Table III) run at the paper's 32 ranks
(problem class S) because pruning is pure profiling; injection campaigns
default to class T (4 ranks) so the whole harness completes in minutes —
the response *shapes* (who fails how) are rank-count invariant, see
EXPERIMENTS.md.  Set ``FASTFIT_BENCH_SCALE=paper`` for class-S campaigns.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

from repro.apps import make_app
from repro.injection import Campaign, CampaignResult, enumerate_points
from repro.profiling import ApplicationProfile, profile_application
from repro.pruning import select_context, select_semantic

CACHE_DIR = Path(__file__).parent / ".cache"

#: "quick" (default) or "paper" — campaign problem class selection.
SCALE = os.environ.get("FASTFIT_BENCH_SCALE", "quick")

CAMPAIGN_CLASS = "S" if SCALE == "paper" else "T"
PRUNING_CLASS = "S"  # pruning is cheap: always at the paper's 32 ranks
TESTS_PER_POINT = 60 if SCALE == "paper" else 25

_memory: dict[str, object] = {}


def _cached(key: str, build):
    """Two-level cache: in-process dict, then pickle on disk."""
    if key in _memory:
        return _memory[key]
    CACHE_DIR.mkdir(exist_ok=True)
    digest = hashlib.sha1(key.encode()).hexdigest()[:16]
    path = CACHE_DIR / f"{digest}.pkl"
    value = None
    if path.exists():
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except Exception:
            # A truncated pickle (interrupted run) must not wedge the
            # whole harness — rebuild it.
            value = None
    if value is None:
        value = build()
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(value, fh)
        tmp.replace(path)
    _memory[key] = value
    return value


def get_app(name: str, problem_class: str | None = None):
    return make_app(name, problem_class or CAMPAIGN_CLASS)


def get_profile(name: str, problem_class: str | None = None) -> ApplicationProfile:
    klass = problem_class or CAMPAIGN_CLASS
    # Profiles hold generators-free data only; safe to keep in memory.
    key = f"profile/{name}/{klass}"
    if key not in _memory:
        _memory[key] = profile_application(make_app(name, klass))
    return _memory[key]


def get_representatives(name: str, problem_class: str | None = None):
    """Semantic + context representatives for an app."""
    profile = get_profile(name, problem_class)
    semantic = select_semantic(profile)
    context = select_context(profile, semantic.selected_points_list)
    return context.selected_points_list


def run_campaign(
    name: str,
    points=None,
    tests_per_point: int | None = None,
    param_policy: str = "buffer",
    seed: int = 2015,
    problem_class: str | None = None,
    max_points: int | None = None,
) -> CampaignResult:
    """Cached campaign over the app's representative points."""
    klass = problem_class or CAMPAIGN_CLASS
    tests = tests_per_point or TESTS_PER_POINT
    points_desc = "reps" if points is None else f"custom{len(points)}"
    key = f"campaign/{name}/{klass}/{points_desc}/{tests}/{param_policy}/{seed}/{max_points}"

    def build():
        app = make_app(name, klass)
        profile = get_profile(name, klass)
        pts = points if points is not None else get_representatives(name, klass)
        if max_points is not None and len(pts) > max_points:
            stride = max(1, len(pts) // max_points)
            pts = pts[::stride][:max_points]
        campaign = Campaign(
            app, profile, tests_per_point=tests, param_policy=param_policy, seed=seed
        )
        return campaign.run(pts)

    return _cached(key, build)


def full_space_size(name: str, problem_class: str | None = None) -> int:
    return len(enumerate_points(get_profile(name, problem_class)))


def _count_tests(value) -> int:
    """Injection tests inside a benchmark's return value, recursively."""
    if isinstance(value, CampaignResult):
        return len(value.all_tests())
    if isinstance(value, dict):
        return sum(_count_tests(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_count_tests(v) for v in value)
    return 0


def benchmark_record(bench) -> dict:
    """One committed-JSON record from a pytest-benchmark result.

    Trimmed to what the ROADMAP's benchmark trajectory needs — stable
    identity plus throughput — so committed ``BENCH_*.json`` files diff
    cleanly across machines and runs.
    """
    stats = bench.stats.stats if hasattr(bench.stats, "stats") else bench.stats
    extra = dict(bench.extra_info)
    total = getattr(stats, "total", None)
    mean = getattr(stats, "mean", None)
    record = {
        "name": bench.name,
        "group": bench.group,
        "rounds": getattr(stats, "rounds", None),
        "mean_s": mean,
        "wall_clock_s": total,
        "extra_info": extra,
    }
    n_tests = extra.get("n_tests")
    if n_tests and mean:
        record["tests_per_sec"] = n_tests / mean
    return record


def emit_benchmark_json(path, benches, session_meta: dict | None = None) -> Path:
    """Write the committed benchmark JSON (``--emit-json BENCH_<name>.json``).

    ``benches`` is the benchmark list pytest-benchmark collected during
    the session; ``session_meta`` adds environment context (scale,
    platform) to the header.
    """
    import json
    import platform
    import sys
    import time

    out = Path(path)
    payload = {
        "schema": 1,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": SCALE,
        "campaign_class": CAMPAIGN_CLASS,
        "tests_per_point": TESTS_PER_POINT,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
        "benchmarks": [benchmark_record(b) for b in benches],
    }
    if session_meta:
        payload.update(session_meta)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def once(benchmark, fn, n_tests: int | None = None):
    """Benchmark an expensive step exactly once (no warmup rounds).

    Annotates the run with how many injection tests the step performed —
    passed explicitly via ``n_tests``, or counted from any
    ``CampaignResult`` objects in the return value.  The JSON hook in
    ``conftest.py`` turns the count into ``tests_per_sec`` in the
    emitted benchmark JSON.
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    tests = n_tests if n_tests is not None else _count_tests(result)
    if tests:
        benchmark.extra_info["n_tests"] = int(tests)
    return result
