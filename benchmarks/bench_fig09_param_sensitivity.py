"""Figure 9 — response types per injected MPI_Allreduce parameter.

Paper setup: inject into each of MPI_Allreduce's six parameters
(sendbuf, recvbuf, count, datatype, op, comm) separately across NPB.
Expected shapes: recvbuf faults have little impact (overwritten by the
library); sendbuf faults are more damaging than recvbuf but largely
detected/masked; count/datatype/op/comm faults are dominated by
SEG_FAULT (pointer-like handles, oversized counts).
"""

import common

from repro.analysis import render_grouped_bars
from repro.apps import NPB_NAMES
from repro.injection import Outcome


def bench_fig09_param_sensitivity(benchmark):
    def run_all():
        return {
            name: common.run_campaign(name, param_policy="all", seed=7, max_points=24)
            for name in NPB_NAMES
        }

    campaigns = common.once(benchmark, run_all)

    # Pool per-parameter outcome histograms over the Allreduce points.
    pooled: dict[str, dict[Outcome, int]] = {}
    for campaign in campaigns.values():
        allreduce = campaign.by_collective().get("Allreduce")
        if allreduce is None:
            continue
        for param, hist in allreduce.by_param().items():
            acc = pooled.setdefault(param, {o: 0 for o in hist})
            for o, c in hist.items():
                acc[o] += c

    groups = {}
    for param in ("sendbuf", "recvbuf", "count", "datatype", "op", "comm"):
        hist = pooled.get(param, {})
        total = sum(hist.values()) or 1
        groups[param] = {o.value: c / total for o, c in hist.items()}
    print()
    print(render_grouped_bars(groups, title="Fig. 9: MPI_Allreduce per-parameter response"))

    success = {p: g.get("SUCCESS", 0.0) for p, g in groups.items()}
    seg = {p: g.get("SEG_FAULT", 0.0) for p, g in groups.items()}

    # recvbuf faults have little impact: overwritten by the collective.
    assert success["recvbuf"] >= 0.8
    # sendbuf is more sensitive than recvbuf.
    assert success["sendbuf"] <= success["recvbuf"] + 1e-9
    # The non-buffer parameters often cause SEG_FAULT.
    for param in ("datatype", "op", "comm"):
        assert seg[param] >= 0.4, f"{param} faults should be SEG_FAULT-heavy"
    assert seg["count"] >= 0.15
