"""Figure 7 — NPB kernels' response types under collective faults.

Paper setup: IS/FT/MG/LU (class B, 32 ranks), faults across the
kernels' collectives.  Expected shapes: INF_LOOP rarest everywhere;
MPI_ERR a significant share (paper: FT-heavy, 46 %); APP_DETECTED
small for NPB; SEG_FAULT very common (paper: IS 44 %, MG 28 %, LU 24 %,
second only to SUCCESS overall).
"""

import common

from repro.analysis import render_grouped_bars
from repro.apps import NPB_NAMES


def bench_fig07_npb_error_types(benchmark):
    def run_all():
        return {
            name: common.run_campaign(name, param_policy="all", seed=7, max_points=24)
            for name in NPB_NAMES
        }

    campaigns = common.once(benchmark, run_all)
    groups = {
        name.upper(): {o.value: f for o, f in c.outcome_fractions().items()}
        for name, c in campaigns.items()
    }
    print()
    print(render_grouped_bars(groups, title="Fig. 7: NPB response types"))

    for name, fracs in groups.items():
        # INF_LOOP has the least occurrence (paper, first observation).
        errors_only = {k: v for k, v in fracs.items() if k != "SUCCESS"}
        assert fracs["INF_LOOP"] <= max(errors_only.values()) + 1e-9
        # SEG_FAULT is a very common error response.
        assert fracs["SEG_FAULT"] >= 0.10, f"{name}: SEG_FAULT unexpectedly rare"

    # MPI_ERR is a significant portion of all errors somewhere (paper: FT).
    assert max(g["MPI_ERR"] for g in groups.values()) >= 0.10
    # NPB's own error handling catches only a small share.
    for name, fracs in groups.items():
        assert fracs["APP_DETECTED"] <= 0.35, f"{name}: APP_DETECTED too common for NPB"
