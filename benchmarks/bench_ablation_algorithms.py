"""Ablation 6 — does the collective *algorithm* change fault sensitivity?

The paper treats the MPI implementation as fixed; this ablation varies
it: the same ``root``-parameter faults run under the binomial-tree and
the chain (pipeline) broadcast schedules.  A corrupted root changes the
rank's position in the schedule, so the *kind* of failure depends on
the schedule's shape — but the bottom line (root faults are fatal
either way) must be algorithm-robust, otherwise FastFIT's sensitivity
conclusions would be artifacts of one MPI implementation.
"""

from collections import Counter

import common
import numpy as np

from repro.analysis.reports import render_grouped_bars
from repro.injection import FaultInjector, FaultSpec, Outcome, enumerate_points
from repro.injection.outcome import OUTCOME_ORDER, classify_exception
from repro.profiling import profile_application
from repro.simmpi import SimMPIError, run_app

N_TESTS = 50


def bench_ablation_algorithms(benchmark):
    app = common.get_app("mg")

    def run_both():
        mixes = {}
        for label, algos in (("binomial", None), ("chain", {"bcast": "chain"})):
            profile = profile_application(app, algorithms=algos)
            golden = profile.golden_results
            budget = max(profile.golden_steps * 8, 50_000)
            point = next(
                p
                for p in enumerate_points(profile)
                if p.collective == "Bcast" and p.rank == 1
            )
            outcomes = []
            for t in range(N_TESTS):
                rng = np.random.default_rng(3000 + t)
                injector = FaultInjector(FaultSpec(point, "root", None), rng)
                try:
                    with np.errstate(all="ignore"):
                        res = run_app(
                            app.main,
                            app.nranks,
                            instruments=[injector],
                            step_budget=budget,
                            algorithms=algos,
                        )
                    outcomes.append(
                        Outcome.SUCCESS
                        if app.compare(golden, res.results)
                        else Outcome.WRONG_ANS
                    )
                except SimMPIError as exc:
                    outcomes.append(classify_exception(exc))
            counts = Counter(outcomes)
            mixes[label] = {o.value: counts.get(o, 0) / N_TESTS for o in OUTCOME_ORDER}
        return mixes

    mixes = common.once(benchmark, run_both)
    print()
    print(
        render_grouped_bars(
            mixes,
            title="Ablation: root-fault outcomes under binomial vs chain broadcast",
        )
    )

    for label, mix in mixes.items():
        # Root faults are fatal regardless of schedule: nearly no SUCCESS.
        assert mix["SUCCESS"] <= 0.1, f"{label}: root faults unexpectedly benign"
        # Failures split between detected (MPI_ERR) and hangs (INF_LOOP).
        assert mix["MPI_ERR"] + mix["INF_LOOP"] >= 0.8
    # The error *kind* split may shift with the schedule, but the total
    # error rate is algorithm-robust.
    err_binomial = 1.0 - mixes["binomial"]["SUCCESS"]
    err_chain = 1.0 - mixes["chain"]["SUCCESS"]
    assert abs(err_binomial - err_chain) <= 0.15
