"""Figure 4 — an example decision tree from the trained model.

The paper's Fig. 4 shows one decision tree produced by FastFIT's
training: non-leaf nodes test application features (Type, Phase,
ErrHal, nInv, StackDep, nDiffStack), leaves are the four sensitivity
levels.  This benchmark trains on a real campaign and renders one tree.
"""

import common

from repro.analysis import QUARTILE_LEVELS
from repro.ml import DecisionTreeClassifier, FEATURE_NAMES, build_level_dataset


def bench_fig04_decision_tree(benchmark):
    profile = common.get_profile("lammps")
    campaign = common.run_campaign("lammps", param_policy="buffer", seed=41)
    ds = build_level_dataset(profile, campaign, QUARTILE_LEVELS)

    def train():
        return DecisionTreeClassifier(max_depth=4, min_samples_leaf=2).fit(ds.X, ds.y)

    tree = benchmark(train)
    rendered = tree.render(list(FEATURE_NAMES), list(ds.label_names))
    print()
    print("Fig. 4: example decision tree over the six application features")
    print(rendered)

    # Shape: the tree must actually use the application features and
    # reach sensitivity-level leaves.
    assert any(name in rendered for name in FEATURE_NAMES)
    assert any(level in rendered for level in QUARTILE_LEVELS.names)
    # Training accuracy must beat the majority class (the tree learned
    # something from the features).
    import numpy as np

    majority = max(np.bincount(ds.y)) / len(ds.y)
    acc = float((tree.predict(ds.X) == ds.y).mean())
    print(f"training accuracy {acc:.0%} vs majority baseline {majority:.0%}")
    assert acc >= majority
