"""Ablation 4 — random forest vs single tree vs majority-class baseline.

Justifies the learner choice of § III-C on the Fig. 13 task (two-level
error-rate prediction over NPB + LAMMPS points): the forest should beat
a majority-class predictor clearly and match or beat a single tree.
"""

import common
import numpy as np

from repro.analysis import EVEN_2_LEVELS, render_table
from repro.apps import NPB_NAMES
from repro.ml import (
    DecisionTreeClassifier,
    RandomForestClassifier,
    build_level_dataset,
    evaluate_model,
    merge_datasets,
)


class MajorityClass:
    """Predict the most frequent training label (the null model)."""

    def fit(self, X, y):
        self.label = int(np.bincount(y).argmax())
        return self

    def predict(self, X):
        return np.full(len(X), self.label, dtype=np.int64)


def _dataset():
    parts = []
    for name in (*NPB_NAMES, "lammps"):
        profile = common.get_profile(name)
        seed = 10 if name == "lammps" else 8
        mp = 30 if name == "lammps" else 24
        campaign = common.run_campaign(name, param_policy="buffer", seed=seed, max_points=mp)
        parts.append(build_level_dataset(profile, campaign, EVEN_2_LEVELS))
    return merge_datasets(parts)


def bench_ablation_ml_baselines(benchmark):
    ds = _dataset()

    factories = {
        "majority class": lambda rep: MajorityClass(),
        "single tree": lambda rep: DecisionTreeClassifier(max_depth=8),
        "random forest": lambda rep: RandomForestClassifier(n_estimators=24, seed=rep),
    }

    def evaluate():
        return {
            name: evaluate_model(factory, ds.X, ds.y, ds.label_names, repeats=5, seed=4)
            for name, factory in factories.items()
        }

    results = common.once(benchmark, evaluate)
    print()
    print(
        render_table(
            ["model", "overall accuracy"],
            [[name, f"{r.overall_accuracy:.1%}"] for name, r in results.items()],
            title="Ablation: learner choice on the 2-level prediction task",
        )
    )

    majority = results["majority class"].overall_accuracy
    tree = results["single tree"].overall_accuracy
    forest = results["random forest"].overall_accuracy
    assert forest > majority + 0.05, "the forest must beat the null model"
    assert forest >= tree - 0.05, "bagging should not lose to one tree"
