"""Speedup-vs-workers for the sharded campaign engine.

Runs the *same* campaign (same app, points, seed) at increasing
``--jobs`` and emits one benchmark record per worker count.  Each
record's ``extra_info`` carries ``jobs``, ``n_tests``, and — once the
serial baseline has run — ``speedup_vs_jobs1``; the JSON hook in
``conftest.py`` adds ``wall_clock_s`` and ``tests_per_sec``, so the
emitted ``--benchmark-json`` is a ready-made scaling curve.

The campaign deliberately bypasses the on-disk campaign cache: the
point of this file is wall-clock, not the result.  Results across
worker counts are asserted bit-identical (same histogram) — the
engine's determinism guarantee, checked here on real work.

Sized via ``FASTFIT_SCALING_POINTS`` / ``FASTFIT_SCALING_TESTS`` so CI
can smoke it cheaply (see ``--jobs 2`` smoke in ci.yml) while a local
run can use a big enough campaign for stable speedup numbers.
"""

from __future__ import annotations

import os
import time

import pytest

import common
from repro.injection import Campaign

N_POINTS = int(os.environ.get("FASTFIT_SCALING_POINTS", "8"))
TESTS_PER_POINT = int(os.environ.get("FASTFIT_SCALING_TESTS", "25"))
JOBS = (1, 2, 4)

_serial_seconds: dict[str, float] = {}
_histograms: dict[int, dict] = {}


def _campaign_inputs():
    app = common.get_app("lu")
    profile = common.get_profile("lu")
    points = common.get_representatives("lu")[:N_POINTS]
    return app, profile, points


@pytest.mark.parametrize("jobs", JOBS)
def bench_campaign_scaling(benchmark, jobs):
    app, profile, points = _campaign_inputs()

    def run():
        start = time.perf_counter()
        result = Campaign(
            app,
            profile,
            tests_per_point=TESTS_PER_POINT,
            param_policy="all",
            seed=2015,
            jobs=jobs,
        ).run(points)
        _serial_seconds.setdefault(f"jobs{jobs}", time.perf_counter() - start)
        return result

    result = common.once(benchmark, run)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["n_points"] = len(points)
    serial = _serial_seconds.get("jobs1")
    mine = _serial_seconds.get(f"jobs{jobs}")
    if serial and mine:
        benchmark.extra_info["speedup_vs_jobs1"] = serial / mine

    # Determinism spot-check: every worker count sees the same outcomes.
    _histograms[jobs] = result.outcome_histogram()
    assert _histograms[jobs] == _histograms[min(_histograms)]
