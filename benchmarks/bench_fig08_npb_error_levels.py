"""Figure 8 — NPB error-rate levels per collective type.

Paper setup: per-collective error-rate levels, low ≤ 15 %,
med 15–85 %, high ≥ 85 % of instances causing errors, with faults in
the data buffers (the paper's default; Barrier has no buffer, so its
faults fall back to the communicator — which is exactly why faulty
barriers are so lethal).  Expected shapes: MPI_Barrier (and Reduce)
hit the applications hardest; MPI_Alltoallv causes the least damage.
"""

import common
import numpy as np

from repro.analysis import PAPER_3_LEVELS, level_distribution, render_grouped_bars
from repro.apps import NPB_NAMES


def bench_fig08_npb_error_levels(benchmark):
    def run_all():
        return {
            name: common.run_campaign(name, param_policy="buffer", seed=8, max_points=24)
            for name in NPB_NAMES
        }

    campaigns = common.once(benchmark, run_all)

    # Pool the points of all four kernels per collective type.
    rates_by_collective: dict[str, list[float]] = {}
    for campaign in campaigns.values():
        for coll, sub in campaign.by_collective().items():
            rates_by_collective.setdefault(coll, []).extend(sub.error_rates())

    groups = {
        coll: level_distribution(rates, PAPER_3_LEVELS)
        for coll, rates in sorted(rates_by_collective.items())
    }
    print()
    print(render_grouped_bars(groups, title="Fig. 8: NPB error-rate levels per collective"))
    means = {c: float(np.mean(r)) for c, r in rates_by_collective.items()}
    print("mean error rate per collective:", {k: round(v, 3) for k, v in means.items()})

    # Shape assertions (paper): faulty Barrier is the most damaging
    # collective, and Allreduce shows a low error rate despite being the
    # most frequent collective.
    assert "Barrier" in means and means["Barrier"] == max(means.values())
    assert groups["Allreduce"]["low"] >= 0.4
    # Known deviation from the paper: our Alltoallv is NOT the mildest —
    # IS's conservation checksum catches every corrupted key, whereas
    # the paper's IS misses most of them.  Recorded in EXPERIMENTS.md.
    print(f"(deviation) Alltoallv mean error rate: {means.get('Alltoallv', 0):.2f}")
