"""Adaptive steering vs ML-driven injection: budget and fidelity.

The adaptive driver (``repro.steer``) claims two things over the plain
ML-driven campaign of § III-C:

* **budget** — uncertainty sampling plus sequential per-point stopping
  reaches the same accuracy target in at most half the injection tests
  (``ratio_vs_ml <= 0.5`` is the acceptance gate);
* **fidelity** — the truncated test streams still reproduce the golden
  LU@8 outcome histogram: per-outcome fractions within
  ``HIST_TOLERANCE`` of the full-budget traditional campaign over the
  same pool (the golden-histogram kernel, wider point slice);

and one thing about itself: the accuracy-vs-budget **curve is
bit-identical** across serial, ``--jobs 4``, and killed-and-resumed
executions.  All three claims are asserted here and recorded in the
committed ``BENCH_adaptive_steering.json``.

Sized via ``FASTFIT_STEER_POINTS`` / ``FASTFIT_STEER_TESTS`` so CI can
smoke it cheaply.
"""

from __future__ import annotations

import os

import common
from repro.apps.npb.lu_kernel import LUKernel
from repro.injection import Campaign, enumerate_points
from repro.profiling import profile_application
from repro.pruning import ml_driven_campaign
from repro.steer import adaptive_campaign

N_POINTS = int(os.environ.get("FASTFIT_STEER_POINTS", "24"))
TESTS_PER_POINT = int(os.environ.get("FASTFIT_STEER_TESTS", "25"))
SEED = 2026
ACCURACY_TARGET = 0.65
CI_WIDTH = 0.4
HIST_TOLERANCE = 0.15

_setup: dict[str, object] = {}
_results: dict[str, object] = {}


def _get_setup():
    if not _setup:
        # The golden-histogram kernel (tests/verify), wider point slice.
        app = LUKernel(8, rows_per_rank=4, ncols=32, iterations=4, omega=1.2, seed=99)
        profile = profile_application(app)
        _setup["app"] = app
        _setup["profile"] = profile
        _setup["pool"] = enumerate_points(profile)[::3][:N_POINTS]
    return _setup["app"], _setup["profile"], _setup["pool"]


def _run_adaptive(**kw):
    app, profile, pool = _get_setup()
    return adaptive_campaign(
        app,
        profile,
        pool,
        accuracy_target=ACCURACY_TARGET,
        ci_width=CI_WIDTH,
        tests_per_point=TESTS_PER_POINT,
        param_policy="all",
        seed=SEED,
        **kw,
    )


def _histogram(tests) -> dict[str, int]:
    hist: dict[str, int] = {}
    for t in tests:
        hist[t.outcome.value] = hist.get(t.outcome.value, 0) + 1
    return hist


def _fractions(hist: dict[str, int]) -> dict[str, float]:
    total = sum(hist.values())
    return {k: v / total for k, v in hist.items()} if total else {}


def bench_ml_driven_baseline(benchmark):
    """The comparison floor: ML-driven campaign, full per-point budget."""
    app, profile, pool = _get_setup()
    result = common.once(
        benchmark,
        lambda: ml_driven_campaign(
            app,
            profile,
            pool,
            threshold=ACCURACY_TARGET,
            tests_per_point=TESTS_PER_POINT,
            param_policy="all",
            seed=SEED,
        ),
    )
    tests = sum(len(pr.tests) for pr in result.tested.values())
    _results["ml_tests"] = tests
    benchmark.extra_info.update(
        mode="ml_driven",
        n_tests=tests,
        tested_points=len(result.tested),
        predicted_points=len(result.predicted),
        reached_threshold=result.reached_threshold,
    )


def bench_adaptive_serial(benchmark):
    """Adaptive steering: the budget and fidelity acceptance gates."""
    app, profile, pool = _get_setup()
    result = common.once(benchmark, _run_adaptive)
    _results["serial"] = result
    ratio = result.tests_run / _results["ml_tests"]

    # Fidelity: per-outcome fractions of the truncated streams vs the
    # full-budget traditional campaign over the same pool.
    full = Campaign(
        app, profile, tests_per_point=TESTS_PER_POINT, param_policy="all", seed=SEED
    ).run(pool)
    full_frac = _fractions(_histogram(full.all_tests()))
    adaptive_frac = _fractions(
        _histogram(t for pr in result.tested.values() for t in pr.tests)
    )
    hist_diff = max(
        abs(full_frac.get(k, 0.0) - adaptive_frac.get(k, 0.0))
        for k in set(full_frac) | set(adaptive_frac)
    )

    benchmark.extra_info.update(
        mode="adaptive",
        n_tests=result.tests_run,
        tests_saved=result.tests_saved,
        tested_points=len(result.tested),
        predicted_points=len(result.predicted),
        stop_reason=result.stop_reason,
        curve=result.curve(),
        ratio_vs_ml=ratio,
        histogram_max_abs_diff=hist_diff,
        histogram_full=_histogram(full.all_tests()),
        histogram_adaptive=_histogram(
            t for pr in result.tested.values() for t in pr.tests
        ),
    )
    assert result.reached_target, f"adaptive stopped on {result.stop_reason}"
    assert ratio <= 0.5, f"adaptive used {ratio:.0%} of the ML-driven budget"
    assert hist_diff <= HIST_TOLERANCE, f"histogram drifted by {hist_diff:.3f}"


class _Killed(RuntimeError):
    pass


class _KillerSink:
    def __init__(self, after: int):
        self.after = after
        self.emits = 0

    def emit(self, snap):
        self.emits += 1
        if self.emits >= self.after:
            raise _Killed(f"injected kill after {self.emits} snapshots")

    def close(self):
        pass


def bench_adaptive_equivalence(benchmark, tmp_path):
    """Curve bit-identity: serial == --jobs 4 == killed-and-resumed."""
    serial = _results["serial"]

    def run_variants():
        jobs4 = _run_adaptive(jobs=4)
        db = tmp_path / "steer.sqlite"
        try:
            _run_adaptive(db_path=db, progress_sinks=[_KillerSink(2)])
        except _Killed:
            pass
        resumed = _run_adaptive(db_path=db, resume=True)
        return jobs4, resumed

    jobs4, resumed = common.once(
        benchmark, run_variants, n_tests=2 * serial.tests_run
    )
    curves = {
        "serial": serial.curve(),
        "jobs4": jobs4.curve(),
        "killed_resumed": resumed.curve(),
    }
    identical = curves["serial"] == curves["jobs4"] == curves["killed_resumed"]
    benchmark.extra_info.update(
        mode="equivalence", curves=curves, curves_identical=identical
    )
    assert identical, f"curves diverged: {curves}"
    assert jobs4.predicted == serial.predicted
    assert resumed.predicted == serial.predicted
    assert set(jobs4.tested) == set(resumed.tested) == set(serial.tested)
