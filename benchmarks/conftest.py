"""Benchmark-harness hooks: observability fields in the emitted JSON.

Every benchmark record saved with ``--benchmark-json`` gains:

* ``wall_clock_s`` — total measured wall-clock across all rounds;
* ``tests_per_sec`` — injection-test throughput, for benchmarks that
  declared how many tests they ran via ``common.once(..., n_tests=N)``
  (or set ``benchmark.extra_info["n_tests"]`` themselves).

These fields live in each record's ``extra_info``, so downstream JSON
consumers need no schema change.

Separately, ``--emit-json PATH`` (or ``FASTFIT_BENCH_EMIT_JSON=PATH``)
writes the *committed* benchmark format: a trimmed, stable-diff JSON
(see ``common.emit_benchmark_json``) — the ROADMAP's
``BENCH_<name>.json`` trajectory files are produced this way.
"""

from __future__ import annotations

import os


def pytest_addoption(parser):
    parser.addoption(
        "--emit-json",
        default=os.environ.get("FASTFIT_BENCH_EMIT_JSON"),
        metavar="PATH",
        help="write the committed benchmark JSON (BENCH_<name>.json) here",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--emit-json", default=None)
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benches = getattr(bench_session, "benchmarks", None)
    if not benches:
        return
    import common

    out = common.emit_benchmark_json(path, benches)
    print(f"\ncommitted benchmark JSON written to {out}")


def pytest_benchmark_update_json(config, benchmarks, output_json):
    for record in output_json.get("benchmarks", []):
        stats = record.get("stats") or {}
        extra = record.setdefault("extra_info", {})
        total = stats.get("total")
        if total is not None:
            extra["wall_clock_s"] = total
        n_tests = extra.get("n_tests")
        mean = stats.get("mean")
        if n_tests and mean:
            extra["tests_per_sec"] = n_tests / mean
