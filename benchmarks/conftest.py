"""Benchmark-harness hooks: observability fields in the emitted JSON.

Every benchmark record saved with ``--benchmark-json`` gains:

* ``wall_clock_s`` — total measured wall-clock across all rounds;
* ``tests_per_sec`` — injection-test throughput, for benchmarks that
  declared how many tests they ran via ``common.once(..., n_tests=N)``
  (or set ``benchmark.extra_info["n_tests"]`` themselves).

These fields live in each record's ``extra_info``, so downstream JSON
consumers need no schema change.
"""

from __future__ import annotations


def pytest_benchmark_update_json(config, benchmarks, output_json):
    for record in output_json.get("benchmarks", []):
        stats = record.get("stats") or {}
        extra = record.setdefault("extra_info", {})
        total = stats.get("total")
        if total is not None:
            extra["wall_clock_s"] = total
        n_tests = extra.get("n_tests")
        mean = stats.get("mean")
        if n_tests and mean:
            extra["tests_per_sec"] = n_tests / mean
