"""Figure 10 — mini-LAMMPS response types under collective buffer faults.

Paper setup: LAMMPS (rhodopsin), faults into the data buffers of its
collectives.  Expected shapes: SUCCESS is the most common response
(~65 % — the statistically tolerant physics masks most flips);
APP_DETECTED is the second most common (LAMMPS' mature error handling,
21.24 %); SEG_FAULT noticeable (~10 %); WRONG_ANS rare (Monte-Carlo-
style verification); INF_LOOP rarest.
"""

import common

from repro.analysis import render_bars
from repro.injection import Outcome


def bench_fig10_lammps_error_types(benchmark):
    def run():
        return common.run_campaign("lammps", param_policy="buffer", seed=10, max_points=30)

    campaign = common.once(benchmark, run)
    fractions = campaign.outcome_fractions()
    print()
    print(
        render_bars(
            {o.value: f for o, f in fractions.items()},
            title="Fig. 10: mini-LAMMPS response types (buffer faults)",
        )
    )

    # SUCCESS dominates (paper: ~65 %).
    assert fractions[Outcome.SUCCESS] == max(fractions.values())
    assert fractions[Outcome.SUCCESS] >= 0.4
    # The application's own error handling catches a substantial share —
    # LAMMPS has the most mature error handling of the suite.
    errors = {o: f for o, f in fractions.items() if o is not Outcome.SUCCESS}
    assert fractions[Outcome.APP_DETECTED] >= 0.5 * max(errors.values())
    # WRONG_ANS is not a common response (statistical verification).
    assert fractions[Outcome.WRONG_ANS] <= 0.25
    # INF_LOOP has the least occurrence among abnormal terminations.
    assert fractions[Outcome.INF_LOOP] <= fractions[Outcome.APP_DETECTED] + 1e-9
