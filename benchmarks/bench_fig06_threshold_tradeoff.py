"""Figure 6 — prediction-accuracy threshold vs reduction of fault
injection points.

Paper setup: mini-LAMMPS, threshold swept 45 %…75 %; the reduction of
injection points *decreases* as the threshold rises (>80 % reduction at
the 45 % threshold; the paper picks 65 % as the balance point).
Expected shape: a (weakly) monotone downward trend.
"""

import common
import numpy as np

from repro.analysis import render_table
from repro.pruning import ml_driven_campaign

THRESHOLDS = (0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75)


def bench_fig06_threshold_tradeoff(benchmark):
    app = common.get_app("lammps")
    profile = common.get_profile("lammps")
    # The sweep runs over the full (unpruned) point space: the paper's
    # LAMMPS deployment leaves thousands of points for the ML stage, so
    # the mini version needs the unpruned space to show the gradient.
    from repro.injection import enumerate_points

    points = enumerate_points(profile)

    def sweep():
        out = {}
        for threshold in THRESHOLDS:
            # Average over a few campaign seeds: each batch-accuracy
            # trajectory is noisy at this miniature scale.
            samples = []
            for seed in (6, 7, 8):
                result = ml_driven_campaign(
                    app,
                    profile,
                    points,
                    threshold=threshold,
                    tests_per_point=8,
                    batch_size=5,
                    param_policy="all",
                    seed=seed,
                )
                samples.append(result.test_reduction)
            out[threshold] = float(np.mean(samples))
        return out

    reductions = common.once(benchmark, sweep)
    print()
    print(
        render_table(
            ["accuracy threshold", "reduction of injection points"],
            [[f"{t:.0%}", f"{r:.1%}"] for t, r in reductions.items()],
            title="Fig. 6: threshold vs point reduction",
        )
    )

    values = np.array([reductions[t] for t in THRESHOLDS])
    # Shape: the low-threshold end reduces at least as much as the
    # high-threshold end, and the best case reduces substantially.
    assert values[0] >= values[-1] - 1e-9
    assert values.max() > 0.3, "low thresholds should skip a large share of points"
