"""Table III — reduction of fault-injection points/tests per technique.

Paper numbers (32 ranks): semantic ("MPI") 96.09–97.24 %; context
("App") 40.00–95.24 %; ML 53.33 % (LAMMPS only, NA for NPB); total
97.81–99.84 %.  Pruning is pure profiling, so this benchmark runs at
the paper's full 32 ranks; the ML column comes from an ML-driven
campaign on the smaller class (injection cost).

Expected shapes: semantic reduction >90 % at 32 ranks; totals >95 %;
LAMMPS context reduction large (same-stack timestep loops).
"""

import common

from repro import FastFIT
from repro.analysis import render_table
from repro.apps import NPB_NAMES, make_app
from repro.pruning import ml_driven_campaign


def bench_table3_reduction(benchmark):
    def build():
        rows = {}
        for name in (*NPB_NAMES, "lammps"):
            ff = FastFIT(make_app(name, common.PRUNING_CLASS))
            pr = ff.prune()
            rows[name] = {
                "MPI": pr.semantic_reduction,
                "App": pr.context_reduction,
                "ML": None,
                "Total": pr.combined_reduction,
            }
        # The ML column (LAMMPS row only, as in the paper): fraction of
        # representative points whose tests the model skipped.
        app = common.get_app("lammps")
        profile = common.get_profile("lammps")
        # The ML stage operates on the points the static pruners leave.
        # At miniature scale the context-pruned set is too small to
        # train on, so the ML column is measured over the semantic
        # survivors (the paper's LAMMPS leaves thousands of points).
        from repro.pruning import select_semantic

        survivors = select_semantic(profile).selected_points_list
        ml = ml_driven_campaign(
            app,
            profile,
            survivors,
            threshold=0.65,
            tests_per_point=10,
            batch_size=6,
            param_policy="buffer",
            seed=33,
        )
        rows["lammps"]["ML"] = ml.test_reduction
        rows["lammps"]["Total"] = 1.0 - (1.0 - rows["lammps"]["Total"]) * (
            1.0 - ml.test_reduction
        )
        return rows

    rows = common.once(benchmark, build)
    table_rows = [
        [
            name.upper(),
            f"{r['MPI']:.2%}",
            f"{r['App']:.2%}",
            "NA" if r["ML"] is None else f"{r['ML']:.2%}",
            f"{r['Total']:.2%}",
        ]
        for name, r in rows.items()
    ]
    print()
    print(
        render_table(
            ["App", "MPI", "App-ctx", "ML", "Total"],
            table_rows,
            title=f"Table III: reduction ratios (pruning at {common.PRUNING_CLASS}-class, 32 ranks)",
        )
    )

    for name, r in rows.items():
        # Semantic pruning at 32 ranks approaches the paper's ~96 %.
        assert r["MPI"] >= 0.85, f"{name}: semantic reduction too small"
        assert r["Total"] >= 0.90, f"{name}: total reduction too small"
    # Context pruning is strongest where one site repeats with one stack.
    assert rows["lammps"]["App"] >= 0.4
    assert rows["lammps"]["ML"] is not None and rows["lammps"]["ML"] > 0.0
