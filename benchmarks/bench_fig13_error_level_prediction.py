"""Figure 13 — error-rate-level prediction accuracy (2 and 3 levels).

Paper setup: the error-rate range divided evenly into 2 (Fig. 13a) or
3 (Fig. 13b) levels; repeated random splits.  Paper numbers: 2-level
>80 % for both classes; 3-level low >76 %, high >66 %.  Expected
shape: strong two-level accuracy, somewhat weaker three-level accuracy.
"""

import common

from repro.analysis import EVEN_2_LEVELS, EVEN_3_LEVELS, render_bars
from repro.apps import NPB_NAMES
from repro.ml import (
    RandomForestClassifier,
    build_level_dataset,
    evaluate_model,
    merge_datasets,
)


def _dataset(scheme):
    """NPB + LAMMPS points from both campaign flavours, for level
    diversity (buffer faults skew low, parameter faults skew high)."""
    parts = []
    for name in (*NPB_NAMES, "lammps"):
        profile = common.get_profile(name)
        seed = 10 if name == "lammps" else 8
        mp = 30 if name == "lammps" else 24
        campaign = common.run_campaign(name, param_policy="buffer", seed=seed, max_points=mp)
        parts.append(build_level_dataset(profile, campaign, scheme))
    return merge_datasets(parts)


def bench_fig13_error_level_prediction(benchmark):
    ds2 = _dataset(EVEN_2_LEVELS)
    ds3 = _dataset(EVEN_3_LEVELS)

    def evaluate():
        out = {}
        for label, ds in (("two levels", ds2), ("three levels", ds3)):
            out[label] = evaluate_model(
                lambda rep: RandomForestClassifier(n_estimators=24, seed=rep),
                ds.X,
                ds.y,
                ds.label_names,
                repeats=5,
                seed=13,
            )
        return out

    results = common.once(benchmark, evaluate)
    print()
    for label, result in results.items():
        print(
            render_bars(
                result.as_dict(),
                title=f"Fig. 13 ({label}): per-level accuracy, overall={result.overall_accuracy:.0%}",
            )
        )

    two = results["two levels"]
    three = results["three levels"]
    # Two-level classification is strong (paper: >80 %).
    assert two.overall_accuracy >= 0.7
    # Three-level is harder but still far above the 1/3 chance level.
    assert three.overall_accuracy >= 0.5
    # The dominant class of each scheme predicts well.
    assert max(two.as_dict().values()) >= 0.75
    assert max(three.as_dict().values()) >= 0.6
