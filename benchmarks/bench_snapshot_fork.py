"""Snapshot-and-fork vs from-scratch injection throughput.

The snapshot engine (``repro.snapshot``) runs the fault-free prefix of a
job *once* per injection site, parks it, and serves every test at that
site by forking the parked process — so the cost of reaching a late
collective invocation is paid once instead of once per test.  This
benchmark measures exactly that amortization: the same batch of tests at
deep (max-invocation) injection sites, executed

* ``scratch`` — every test replayed from t=0 (``InjectionRunner.run_one``);
* ``forked``  — every test served from the parked prefix
  (``SnapshotEngine.serve_point``);

on LU and FT at 8 ranks.  ``extra_info`` carries ``n_tests`` (so the
JSON hook derives ``tests_per_sec``) plus, on the forked records, the
measured ``speedup_vs_scratch`` — the acceptance number (the ROADMAP
asks ≥3× on multi-site LU@8).

Deep points are deliberate: amortization grows with prefix length, and
the paper's interesting sites (late iterations, converged state) are
exactly the deep ones.  Sized via ``FASTFIT_SNAPFORK_SITES`` /
``FASTFIT_SNAPFORK_TESTS`` so CI can smoke it cheaply.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import common
from repro.apps.npb.ft_kernel import FTKernel
from repro.apps.npb.lu_kernel import LUKernel
from repro.injection.runner import InjectionRunner
from repro.injection.space import FaultSpec, enumerate_points, points_per_site
from repro.injection.targets import pick_target
from repro.profiling import profile_application
from repro.snapshot import SnapshotEngine, snapshot_supported

N_SITES = int(os.environ.get("FASTFIT_SNAPFORK_SITES", "4"))
TESTS_PER_POINT = int(os.environ.get("FASTFIT_SNAPFORK_TESTS", "25"))
#: "deep" (default) — prefixes long enough that amortization dominates
#: (~130 ms/run, the regime the engine targets); "quick" — tiny runs for
#: CI smoke, where per-fork overhead is comparable to a full replay and
#: no speedup is expected or asserted.
SCALE = os.environ.get("FASTFIT_SNAPFORK_SCALE", "deep")
SEED = 2015

APPS = {
    "deep": {
        "lu8": lambda: LUKernel(8, rows_per_rank=16, ncols=128, iterations=30, omega=1.2, seed=99),
        "ft8": lambda: FTKernel(8, nx=64, ny=64, iterations=30, seed=42),
    },
    "quick": {
        "lu8": lambda: LUKernel(8, rows_per_rank=4, ncols=32, iterations=4, omega=1.2, seed=99),
        "ft8": lambda: FTKernel(8, nx=16, ny=16, iterations=3, seed=42),
    },
}[SCALE]

_setup: dict[str, tuple] = {}
_seconds: dict[tuple[str, str], float] = {}
_signatures: dict[tuple[str, str], list] = {}


def _get_setup(name: str):
    """(runner, deep points) for an app — profiled once per session."""
    if name not in _setup:
        app = APPS[name]()
        profile = profile_application(app)
        by_site = points_per_site(enumerate_points(profile))
        # One max-invocation point per site, deepest sites first.
        deep = sorted(
            (max(pts, key=lambda p: p.invocation) for pts in by_site.values()),
            key=lambda p: -p.invocation,
        )[:N_SITES]
        _setup[name] = (InjectionRunner(app, profile), deep)
    return _setup[name]


def _tasks_for(points, pi: int):
    tasks = []
    for t in range(TESTS_PER_POINT):
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=SEED, spawn_key=(pi, t))
        )
        param = pick_target(rng, points[pi].collective, "buffer")
        tasks.append((FaultSpec(points[pi], param, None), rng))
    return tasks


def _signature(tests) -> list:
    return [(repr(t.spec.point), t.spec.param, t.outcome.name, t.detail) for t in tests]


@pytest.mark.parametrize("app_name", sorted(APPS))
def bench_scratch(benchmark, app_name):
    runner, points = _get_setup(app_name)

    def run():
        start = time.perf_counter()
        out = [
            [runner.run_one(spec, rng) for spec, rng in _tasks_for(points, pi)]
            for pi in range(len(points))
        ]
        _seconds[(app_name, "scratch")] = time.perf_counter() - start
        return out

    results = common.once(benchmark, run, n_tests=len(points) * TESTS_PER_POINT)
    benchmark.extra_info["mode"] = "scratch"
    benchmark.extra_info["n_sites"] = len(points)
    _signatures[(app_name, "scratch")] = [_signature(tests) for tests in results]


@pytest.mark.parametrize("app_name", sorted(APPS))
def bench_forked(benchmark, app_name):
    if not snapshot_supported():
        pytest.skip("snapshot-and-fork needs os.fork")
    runner, points = _get_setup(app_name)
    engine = SnapshotEngine(runner)

    def run():
        start = time.perf_counter()
        out = [
            engine.serve_point(points[pi], _tasks_for(points, pi))
            for pi in range(len(points))
        ]
        _seconds[(app_name, "forked")] = time.perf_counter() - start
        return out

    results = common.once(benchmark, run, n_tests=len(points) * TESTS_PER_POINT)
    benchmark.extra_info["mode"] = "forked"
    benchmark.extra_info["n_sites"] = len(points)
    scratch = _seconds.get((app_name, "scratch"))
    mine = _seconds.get((app_name, "forked"))
    if scratch and mine:
        benchmark.extra_info["speedup_vs_scratch"] = scratch / mine

    # Equivalence spot-check on real work: forked == scratch, bit for bit.
    forked_sig = [_signature(tests) for tests in results]
    scratch_sig = _signatures.get((app_name, "scratch"))
    if scratch_sig is not None:
        assert forked_sig == scratch_sig
