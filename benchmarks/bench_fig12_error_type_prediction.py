"""Figure 12 — error-type prediction accuracy of the random forest.

Paper setup: train on fault-injection results (NPB + LAMMPS), split the
labelled set 5× at random, report per-error-type prediction accuracy.
Paper numbers: SUCCESS 86 %, APP_DETECTED 80 %, WRONG_ANS 75 % — and a
notably *low* SEG_FAULT accuracy (47 %, weakly correlated with the
chosen features).  Expected shape: SUCCESS/APP_DETECTED predicted well;
overall accuracy far above chance.
"""

import common
import numpy as np

from repro.analysis import render_bars
from repro.apps import NPB_NAMES
from repro.ml import (
    RandomForestClassifier,
    build_outcome_dataset,
    evaluate_model,
    merge_datasets,
)


def _dataset():
    """NPB + LAMMPS points from both campaign flavours (buffer-only and
    all-parameter faults), for response-type diversity."""
    parts = []
    for name in (*NPB_NAMES, "lammps"):
        profile = common.get_profile(name)
        seed = 10 if name == "lammps" else 8
        mp = 30 if name == "lammps" else 24
        campaign = common.run_campaign(name, param_policy="buffer", seed=seed, max_points=mp)
        parts.append(build_outcome_dataset(profile, campaign))
    return merge_datasets(parts)


def bench_fig12_error_type_prediction(benchmark):
    ds = _dataset()

    def evaluate():
        return evaluate_model(
            lambda rep: RandomForestClassifier(n_estimators=24, seed=rep),
            ds.X,
            ds.y,
            ds.label_names,
            repeats=5,
            seed=12,
        )

    result = common.once(benchmark, evaluate)
    per_class = result.as_dict()
    print()
    print(
        render_bars(
            per_class,
            title=f"Fig. 12: error-type prediction accuracy (n={len(ds)}, overall={result.overall_accuracy:.0%})",
        )
    )

    assert result.overall_accuracy > 1.0 / 6.0 + 0.2, "must beat chance clearly"
    # SUCCESS — the most common, feature-correlated type — predicts well.
    assert per_class.get("SUCCESS", 0.0) >= 0.6
    present = [v for v in per_class.values() if not np.isnan(v)]
    assert np.mean(present) >= 0.4
