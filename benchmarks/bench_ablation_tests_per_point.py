"""Ablation 5 — how many tests per point are enough?

The paper uses "at least 100 fault injection tests at each fault
injection point to ensure statistical significance" and claims 100 is
sufficient.  This bench checks that claim's logic on real campaign
data: the Wilson confidence interval at n=100 discriminates the
quartile sensitivity levels, and the assigned level stabilises long
before 100 tests.
"""

import common
import numpy as np

from repro.analysis import (
    QUARTILE_LEVELS,
    convergence_trace,
    level_stability,
    required_tests,
    wilson_interval,
)
from repro.analysis.reports import render_table
from repro.injection import Campaign, enumerate_points


def bench_ablation_tests_per_point(benchmark):
    app = common.get_app("lammps")
    profile = common.get_profile("lammps")
    points = [
        p for p in enumerate_points(profile) if p.rank == 0 and p.collective == "Allreduce"
    ][:6]

    def run():
        campaign = Campaign(
            app, profile, tests_per_point=100, param_policy="buffer", seed=55
        )
        return campaign.run(points)

    result = common.once(benchmark, run)

    rows = []
    stabilisations = []
    for point, pr in result.points.items():
        errors = [t.outcome.is_error for t in pr.tests]
        trace = convergence_trace(errors)
        stable_at = level_stability(trace, QUARTILE_LEVELS.level_of)
        stabilisations.append(stable_at)
        final = wilson_interval(sum(errors), len(errors))
        rows.append(
            [
                str(point),
                f"{final.rate:.2f}",
                f"[{final.low:.2f}, {final.high:.2f}]",
                QUARTILE_LEVELS.name_of(final.rate),
                stable_at,
            ]
        )
    print()
    print(
        render_table(
            ["point", "error rate", "95% CI @ n=100", "level", "level stable after"],
            rows,
            title="Ablation: adequacy of 100 tests per point",
        )
    )
    need = required_tests(half_width=0.125)
    print(f"tests needed for quartile-level half-width (0.125) at 95%: {need}")

    # The paper's design point: 100 tests suffice for level qualification.
    assert need <= 100
    # Most points' levels settle well before 100 tests.
    assert float(np.median(stabilisations)) <= 100
    for row in rows:
        # CI half-width at n=100 is small enough to separate quartiles.
        lo, hi = row[2].strip("[]").split(",")
        assert (float(hi) - float(lo)) / 2 <= 0.15
